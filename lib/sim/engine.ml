type kind =
  | Bus
  | Dram
  | Cache
  | Scratchpad
  | Tlb
  | Ptw
  | Dma
  | Pipeline
  | Host

let kind_label = function
  | Bus -> "bus"
  | Dram -> "dram"
  | Cache -> "cache"
  | Scratchpad -> "scratchpad"
  | Tlb -> "tlb"
  | Ptw -> "ptw"
  | Dma -> "dma"
  | Pipeline -> "pipeline"
  | Host -> "host"

type event =
  | Acquire of {
      component : string;
      time : Time.cycles;
      start : Time.cycles;
      finish : Time.cycles;
    }
  | Transfer of {
      component : string;
      time : Time.cycles;
      dir : [ `Read | `Write ];
      bytes : int;
    }
  | Translate of { component : string; time : Time.cycles; level : string }
  | Note of { component : string; time : Time.cycles; detail : string }
  | Fault of {
      component : string;
      time : Time.cycles;
      kind : string;
      detail : string;
    }
  | Span_open of {
      component : string;
      time : Time.cycles;
      name : string;
      cat : string;
      args : (string * string) list;
    }
  | Span_close of { component : string; time : Time.cycles; name : string }

let event_time = function
  | Acquire { time; _ } | Transfer { time; _ } | Translate { time; _ }
  | Note { time; _ } | Fault { time; _ } | Span_open { time; _ }
  | Span_close { time; _ } ->
      time

let event_component = function
  | Acquire { component; _ } | Transfer { component; _ }
  | Translate { component; _ } | Note { component; _ } | Fault { component; _ }
  | Span_open { component; _ } | Span_close { component; _ } ->
      component

let pp_event fmt = function
  | Acquire { component; time; start; finish } ->
      Format.fprintf fmt "[%a] %-16s acquire start=%a finish=%a" Time.pp time
        component Time.pp start Time.pp finish
  | Transfer { component; time; dir; bytes } ->
      Format.fprintf fmt "[%a] %-16s %s %d bytes" Time.pp time component
        (match dir with `Read -> "read" | `Write -> "write")
        bytes
  | Translate { component; time; level } ->
      Format.fprintf fmt "[%a] %-16s translate via %s" Time.pp time component
        level
  | Note { component; time; detail } ->
      Format.fprintf fmt "[%a] %-16s %s" Time.pp time component detail
  | Fault { component; time; kind; detail } ->
      Format.fprintf fmt "[%a] %-16s FAULT %s: %s" Time.pp time component kind
        detail
  | Span_open { component; time; name; cat; args } ->
      Format.fprintf fmt "[%a] %-16s span open %s (%s)%s" Time.pp time component
        name cat
        (String.concat ""
           (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) args))
  | Span_close { component; time; name } ->
      Format.fprintf fmt "[%a] %-16s span close %s" Time.pp time component name

type sample = {
  p_requests : int;
  p_busy : Time.cycles;
  p_wait : Time.cycles;
  p_note : string;
}

type stat = {
  stat_name : string;
  stat_kind : kind;
  stat_requests : int;
  stat_busy : Time.cycles;
  stat_wait : Time.cycles;
  stat_faults : int;
  stat_note : string;
}

type impl =
  | Owned of { res : Resource.t; note : unit -> string }
  | Probe of (unit -> sample)

type entry = { e_name : string; e_kind : kind; e_impl : impl }

type t = {
  mutable clock : Time.cycles;
  mutable entries : entry list; (* reversed registration order *)
  mutable next_res_id : int; (* dense ids handed to owned resources *)
  name_counts : (string, int) Hashtbl.t;
  capacity : int;
  ring : event option array;
  mutable next : int;
  mutable total : int;
  mutable trace_on : bool;
  mutable sinks : (event -> unit) list;
  fault_counts : (string, int) Hashtbl.t; (* component name -> traps *)
  mutable total_faults : int;
  (* Parallel-section clock: length 0 outside a parallel section (clock
     updates go straight to [clock]); inside one, every domain advances
     only its own slot and the coordinator folds the maxima back into
     [clock] at the barrier. *)
  mutable par_slots : Time.cycles array;
  trap_lock : Mutex.t; (* fault tally, reachable from worker domains *)
}

let create ?(trace_capacity = 4096) ?(trace = false) () =
  if trace_capacity <= 0 then invalid_arg "Engine.create: capacity <= 0";
  {
    clock = Time.zero;
    entries = [];
    next_res_id = 0;
    name_counts = Hashtbl.create 16;
    capacity = trace_capacity;
    ring = Array.make trace_capacity None;
    next = 0;
    total = 0;
    trace_on = trace;
    sinks = [];
    fault_counts = Hashtbl.create 16;
    total_faults = 0;
    par_slots = [||];
    trap_lock = Mutex.create ();
  }

(* --- registry ------------------------------------------------------------ *)

let unique_name t name =
  match Hashtbl.find_opt t.name_counts name with
  | None ->
      Hashtbl.replace t.name_counts name 1;
      name
  | Some n ->
      Hashtbl.replace t.name_counts name (n + 1);
      Printf.sprintf "%s#%d" name (n + 1)

let no_note () = ""

let resource ?(note = no_note) t ~kind ~name =
  let name = unique_name t name in
  let res = Resource.create ~name in
  Resource.set_id res t.next_res_id;
  t.next_res_id <- t.next_res_id + 1;
  t.entries <- { e_name = name; e_kind = kind; e_impl = Owned { res; note } } :: t.entries;
  res

let register_probe t ~kind ~name ~sample =
  let name = unique_name t name in
  t.entries <- { e_name = name; e_kind = kind; e_impl = Probe sample } :: t.entries

let components t =
  List.rev_map (fun e -> (e.e_name, e.e_kind)) t.entries

(* --- clock and events ---------------------------------------------------- *)

let now t = t.clock

(* Which parallel-clock slot the calling domain advances. The coordinator
   keeps the default slot 0; worker domains are pinned to their own slot
   by [set_domain_slot] right after spawn. *)
let slot_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let set_domain_slot i = Domain.DLS.set slot_key i

let observe t time =
  let slots = t.par_slots in
  if Array.length slots = 0 then begin
    if time > t.clock then t.clock <- time
  end
  else begin
    let s = Domain.DLS.get slot_key in
    if time > Array.unsafe_get slots s then Array.unsafe_set slots s time
  end

let enter_parallel t ~slots =
  if slots <= 0 then invalid_arg "Engine.enter_parallel: slots <= 0";
  if Array.length t.par_slots <> 0 then
    invalid_arg "Engine.enter_parallel: already parallel";
  t.par_slots <- Array.make slots t.clock

let exit_parallel t =
  let slots = t.par_slots in
  t.par_slots <- [||];
  Array.iter (fun c -> if c > t.clock then t.clock <- c) slots

let tracing t = t.trace_on
let set_tracing t b = t.trace_on <- b
let observing t = t.trace_on || t.sinks <> []
let live = observing
let add_sink t f = t.sinks <- t.sinks @ [ f ]

module P = Gem_obs.Profile

let emit t event =
  if !P.on then P.enter P.event;
  observe t (event_time event);
  if t.trace_on then begin
    t.ring.(t.next) <- Some event;
    t.next <- (t.next + 1) mod t.capacity;
    t.total <- t.total + 1
  end;
  List.iter (fun sink -> sink event) t.sinks;
  if !P.on then P.leave P.event

let events t =
  let out = ref [] in
  for i = 0 to t.capacity - 1 do
    let idx = (t.next + t.capacity - 1 - i) mod t.capacity in
    match t.ring.(idx) with Some e -> out := e :: !out | None -> ()
  done;
  !out

let event_count t = t.total

(* Events recorded while tracing but since overwritten by the wrapping
   ring. Sinks are unaffected (they see every event as it is emitted);
   only the retained [events] view loses history. *)
let dropped_events t = if t.total > t.capacity then t.total - t.capacity else 0

(* --- timing -------------------------------------------------------------- *)

let acquire t res ~now ~occupancy =
  if !P.on then P.enter P.acquire;
  let finish = Resource.acquire res ~now ~occupancy in
  observe t finish;
  if observing t then
    emit t
      (Acquire
         {
           component = Resource.name res;
           time = now;
           start = finish - occupancy;
           finish;
         });
  if !P.on then P.leave P.acquire;
  finish

let next_free _t res ~now = Resource.next_free res ~now

let occupy t res ~now ~start ~until =
  if !P.on then P.enter P.acquire;
  Resource.occupy_until res ~now ~start ~until;
  observe t until;
  if observing t then
    emit t
      (Acquire { component = Resource.name res; time = now; start; finish = until });
  if !P.on then P.leave P.acquire

(* --- faults --------------------------------------------------------------- *)

let faults t ~component =
  Option.value ~default:0 (Hashtbl.find_opt t.fault_counts component)

let total_faults t = t.total_faults

let trap t (fault : Fault.t) =
  (* The tally is cold (one lock per trap, not per event) but must be
     domain-safe: worker domains report Degrade/validate faults while the
     coordinator may be tallying its own. *)
  Mutex.lock t.trap_lock;
  Hashtbl.replace t.fault_counts fault.Fault.component
    (faults t ~component:fault.Fault.component + 1);
  t.total_faults <- t.total_faults + 1;
  Mutex.unlock t.trap_lock;
  observe t fault.Fault.cycle;
  if observing t then
    emit t
      (Fault
         {
           component = fault.Fault.component;
           time = fault.Fault.cycle;
           kind = Fault.cause_label fault.Fault.cause;
           detail = Fault.cause_detail fault.Fault.cause;
         });
  Fault.trap fault

(* --- metrics ------------------------------------------------------------- *)

let stat_of_entry t e =
  match e.e_impl with
  | Owned { res; note } ->
      {
        stat_name = e.e_name;
        stat_kind = e.e_kind;
        stat_requests = Resource.requests res;
        stat_busy = Resource.busy_cycles res;
        stat_wait = Resource.wait_cycles res;
        stat_faults = faults t ~component:e.e_name;
        stat_note = note ();
      }
  | Probe sample ->
      let s = sample () in
      {
        stat_name = e.e_name;
        stat_kind = e.e_kind;
        stat_requests = s.p_requests;
        stat_busy = s.p_busy;
        stat_wait = s.p_wait;
        stat_faults = faults t ~component:e.e_name;
        stat_note = s.p_note;
      }

let stats t = List.rev_map (stat_of_entry t) t.entries

(* Pull-based: closures over [t] are sampled when the registry is
   snapshotted, after the run — registration itself costs nothing on the
   simulation path. *)
let register_metrics ?(prefix = "engine.") t reg =
  let module M = Gem_obs.Metrics in
  M.pull_int reg (prefix ^ "clock") (fun () -> now t);
  M.pull_int reg (prefix ^ "events") (fun () -> event_count t);
  M.pull_int reg (prefix ^ "dropped_events") (fun () -> dropped_events t);
  M.pull_int reg (prefix ^ "faults") (fun () -> total_faults t);
  List.iter
    (fun e ->
      let base = prefix ^ "comp." ^ e.e_name in
      M.pull_int reg (base ^ ".requests") (fun () ->
          (stat_of_entry t e).stat_requests);
      M.pull_int reg (base ^ ".busy") (fun () -> (stat_of_entry t e).stat_busy);
      M.pull_int reg (base ^ ".wait") (fun () -> (stat_of_entry t e).stat_wait))
    (List.rev t.entries)

let horizon t = t.clock

let utilization_table t ?horizon:h () =
  let module Table = Gem_util.Table in
  let horizon = match h with Some h -> h | None -> t.clock in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "Engine profile (horizon = %s cycles)"
           (Table.fmt_int horizon))
      [
        "Component"; "Kind"; "Requests"; "Busy"; "Wait"; "Util"; "Faults";
        "Detail";
      ]
  in
  List.iter (fun i -> Table.set_align tbl i Table.Right) [ 2; 3; 4; 5; 6 ];
  List.iter
    (fun s ->
      let util =
        if horizon <= 0 then 0.
        else 100. *. float_of_int s.stat_busy /. float_of_int horizon
      in
      Table.add_row tbl
        [
          s.stat_name;
          kind_label s.stat_kind;
          Table.fmt_int s.stat_requests;
          Table.fmt_int s.stat_busy;
          Table.fmt_int s.stat_wait;
          Table.fmt_pct util;
          Table.fmt_int s.stat_faults;
          s.stat_note;
        ])
    (stats t);
  tbl

(* --- snapshot / restore ----------------------------------------------------

   The engine's mutable state is the chip-wide timing substrate: the clock,
   every owned resource's arbitration counters, the fault attribution
   table, and the retained event ring. All of it serializes to
   deterministic JSON (owned resources keyed by their unique registered
   names, fault counts sorted) so a snapshot of a quiesced SoC is
   byte-stable. Probes are excluded: the components they sample snapshot
   their own state. *)

module J = Gem_util.Jsonx
module Snap = Gem_util.Snap

let dir_token = function `Read -> "r" | `Write -> "w"

let dir_of_token = function
  | "r" -> `Read
  | "w" -> `Write
  | s -> Snap.fail "bad transfer direction %S" s

let event_to_json = function
  | Acquire { component; time; start; finish } ->
      J.Obj
        [ ("t", J.String "acq"); ("c", J.String component); ("at", J.Int time);
          ("s", J.Int start); ("f", J.Int finish) ]
  | Transfer { component; time; dir; bytes } ->
      J.Obj
        [ ("t", J.String "xfer"); ("c", J.String component); ("at", J.Int time);
          ("d", J.String (dir_token dir)); ("b", J.Int bytes) ]
  | Translate { component; time; level } ->
      J.Obj
        [ ("t", J.String "xlat"); ("c", J.String component); ("at", J.Int time);
          ("l", J.String level) ]
  | Note { component; time; detail } ->
      J.Obj
        [ ("t", J.String "note"); ("c", J.String component); ("at", J.Int time);
          ("n", J.String detail) ]
  | Fault { component; time; kind; detail } ->
      J.Obj
        [ ("t", J.String "fault"); ("c", J.String component); ("at", J.Int time);
          ("k", J.String kind); ("n", J.String detail) ]
  | Span_open { component; time; name; cat; args } ->
      J.Obj
        [ ("t", J.String "open"); ("c", J.String component); ("at", J.Int time);
          ("n", J.String name); ("k", J.String cat);
          ( "a",
            J.List
              (List.map
                 (fun (k, v) -> J.List [ J.String k; J.String v ])
                 args) ) ]
  | Span_close { component; time; name } ->
      J.Obj
        [ ("t", J.String "close"); ("c", J.String component);
          ("at", J.Int time); ("n", J.String name) ]

let event_of_json j =
  let component = Snap.get_str "c" j and time = Snap.get_int "at" j in
  match Snap.get_str "t" j with
  | "acq" ->
      Acquire
        { component; time; start = Snap.get_int "s" j;
          finish = Snap.get_int "f" j }
  | "xfer" ->
      Transfer
        { component; time; dir = dir_of_token (Snap.get_str "d" j);
          bytes = Snap.get_int "b" j }
  | "xlat" -> Translate { component; time; level = Snap.get_str "l" j }
  | "note" -> Note { component; time; detail = Snap.get_str "n" j }
  | "fault" ->
      Fault
        { component; time; kind = Snap.get_str "k" j;
          detail = Snap.get_str "n" j }
  | "open" ->
      let args =
        List.map
          (fun p ->
            match Snap.list p with
            | [ k; v ] -> (Snap.str k, Snap.str v)
            | _ -> Snap.fail "bad span arg pair")
          (Snap.get_list "a" j)
      in
      Span_open
        { component; time; name = Snap.get_str "n" j;
          cat = Snap.get_str "k" j; args }
  | "close" -> Span_close { component; time; name = Snap.get_str "n" j }
  | tag -> Snap.fail "unknown event tag %S" tag

let snapshot t =
  let resources =
    List.rev
      (List.filter_map
         (fun e ->
           match e.e_impl with
           | Probe _ -> None
           | Owned { res; _ } ->
               Some
                 ( e.e_name,
                   Snap.of_int_list
                     [ Resource.busy_until res; Resource.busy_cycles res;
                       Resource.requests res; Resource.wait_cycles res ] ))
         t.entries)
  in
  let fault_counts =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, J.Int v) :: acc) t.fault_counts [])
  in
  J.Obj
    [ ("clock", J.Int t.clock);
      ("resources", J.Obj resources);
      ("fault_counts", J.Obj fault_counts);
      ("total_faults", J.Int t.total_faults);
      ("event_total", J.Int t.total);
      ("events", J.List (List.map event_to_json (events t))) ]

let restore t j =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e.e_impl with
      | Owned { res; _ } -> Hashtbl.replace by_name e.e_name res
      | Probe _ -> ())
    t.entries;
  let saved = Snap.obj (Snap.member "resources" j) in
  Snap.check ~what:"engine resource registry size"
    (List.length saved = Hashtbl.length by_name);
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt by_name name with
      | None -> Snap.fail "snapshot resource %S not in this engine" name
      | Some res -> (
          match Snap.int_list v with
          | [ busy_until; busy_cycles; requests; wait_cycles ] ->
              Resource.force_state res ~busy_until ~busy_cycles ~requests
                ~wait_cycles
          | _ -> Snap.fail "resource %S: expected 4 counters" name))
    saved;
  t.clock <- Snap.get_int "clock" j;
  Hashtbl.reset t.fault_counts;
  List.iter
    (fun (k, v) -> Hashtbl.replace t.fault_counts k (Snap.int v))
    (Snap.obj (Snap.member "fault_counts" j));
  t.total_faults <- Snap.get_int "total_faults" j;
  let evs = List.map event_of_json (Snap.get_list "events" j) in
  let n = List.length evs in
  Snap.check ~what:"trace ring capacity" (n <= t.capacity);
  Array.fill t.ring 0 t.capacity None;
  List.iteri (fun i e -> t.ring.(i) <- Some e) evs;
  t.next <- n mod t.capacity;
  t.total <- Snap.get_int "event_total" j

let reset t =
  t.clock <- Time.zero;
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.total <- 0;
  Hashtbl.reset t.fault_counts;
  t.total_faults <- 0;
  List.iter
    (fun e -> match e.e_impl with Owned { res; _ } -> Resource.reset res | Probe _ -> ())
    t.entries
