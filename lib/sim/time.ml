type cycles = int

let zero = 0

let seconds ~freq_ghz cycles = float_of_int cycles /. (freq_ghz *. 1e9)

let fps ~freq_ghz ~cycles_per_item =
  if cycles_per_item <= 0 then 0.
  else freq_ghz *. 1e9 /. float_of_int cycles_per_item

let pp fmt c = Format.pp_print_string fmt (Gem_util.Table.fmt_int c)
