type event = { time : Time.cycles; tag : string; detail : string }

type t = {
  capacity : int;
  mutable enabled : bool;
  mutable ring : event option array;
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 4096) ~enabled () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity <= 0";
  { capacity; enabled; ring = Array.make capacity None; next = 0; total = 0 }

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b

let record t ~time ~tag detail =
  if t.enabled then begin
    t.ring.(t.next) <- Some { time; tag; detail };
    t.next <- (t.next + 1) mod t.capacity;
    t.total <- t.total + 1
  end

let recordf t ~time ~tag fmt =
  (* Only format when enabled: ksprintf would eagerly build the string and
     then drop it inside [record]. *)
  if t.enabled then Printf.ksprintf (fun s -> record t ~time ~tag s) fmt
  else Printf.ikfprintf ignore () fmt

let events t =
  let out = ref [] in
  for i = 0 to t.capacity - 1 do
    let idx = (t.next + t.capacity - 1 - i) mod t.capacity in
    match t.ring.(idx) with Some e -> out := e :: !out | None -> ()
  done;
  !out

let count t = t.total

let pp fmt t =
  List.iter
    (fun e -> Format.fprintf fmt "[%a] %-12s %s@." Time.pp e.time e.tag e.detail)
    (events t)
