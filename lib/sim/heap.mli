(** Binary min-heap keyed by simulated time.

    The multi-core SoC driver repeatedly advances whichever core has the
    smallest next-operation time; this heap provides that schedule. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> key:Time.cycles -> 'a -> unit
val pop : 'a t -> (Time.cycles * 'a) option
(** Removes and returns the minimum-keyed element. Ties pop in insertion
    order. *)

val peek_key : 'a t -> Time.cycles option
