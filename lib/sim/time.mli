(** Simulated time.

    All timing in the simulator is expressed in accelerator clock cycles
    (integer). Conversions to wall-clock seconds/FPS take the clock
    frequency as a parameter; the paper evaluates at 1 GHz. *)

type cycles = int

val zero : cycles

val seconds : freq_ghz:float -> cycles -> float
(** Wall-clock seconds for [cycles] at the given clock frequency. *)

val fps : freq_ghz:float -> cycles_per_item:cycles -> float
(** Frames (items) per second, e.g. inference FPS at 1 GHz. *)

val pp : Format.formatter -> cycles -> unit
(** Prints with thousands separators. *)
