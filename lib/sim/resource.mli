(** Serially-occupied shared resources with bandwidth-style arbitration.

    A resource (a bus, a DRAM channel, a cache port) can serve one request
    at a time. A request arriving at [now] that needs [occupancy] cycles of
    service starts at [max now busy_until] and completes [occupancy] cycles
    later. This greedy timestamp arbitration is how contention between the
    accelerator's load/store streams — and between cores of a multi-core
    SoC — is modeled. *)

type t

val create : name:string -> t

val name : t -> string

val id : t -> int
(** Dense integer id assigned at engine-registration time (-1 for a
    free-standing resource). The hot path keys per-domain state by this
    int instead of hashing the name. *)

val set_id : t -> int -> unit
(** Called once by {!Engine.resource} when the resource enters the
    registry. *)

val acquire : t -> now:Time.cycles -> occupancy:Time.cycles -> Time.cycles
(** [acquire t ~now ~occupancy] reserves the resource and returns the
    completion time. Requires [occupancy >= 0]. A zero-occupancy request
    returns its service-slot time ([max now busy_until]) and counts as a
    request, but never advances [busy_until] or [busy_cycles]. *)

val next_free : t -> now:Time.cycles -> Time.cycles
(** When a request arriving at [now] could start service:
    [max now busy_until]. Pure query, no statistics side effects. *)

val occupy_until : t -> now:Time.cycles -> start:Time.cycles -> until:Time.cycles -> unit
(** Commits a reservation whose duration was computed externally (after a
    {!next_free} query): charges [start - now] wait and [until - start]
    busy cycles and advances [busy_until] to at least [until]. Requires
    [now <= start <= until]. *)

val busy_until : t -> Time.cycles

val busy_cycles : t -> Time.cycles
(** Total cycles of service performed so far. *)

val requests : t -> int

val wait_cycles : t -> Time.cycles
(** Total cycles requests spent queued behind earlier requests. *)

val utilization : t -> horizon:Time.cycles -> float
(** Fraction of [horizon] the resource spent busy. *)

val reset : t -> unit

val force_state :
  t ->
  busy_until:Time.cycles ->
  busy_cycles:Time.cycles ->
  requests:int ->
  wait_cycles:Time.cycles ->
  unit
(** Overwrite all four arbitration counters at once — the checkpoint
    restore path. Not for use during simulation. *)
