type cause =
  | Illegal_inst of string
  | Local_oob of { target : string; row : int; rows : int; limit : int }
  | Page_fault of { vpn : int; write : bool }
  | Dma_bus_error of { vaddr : int; bytes : int }
  | Acc_overflow of { scale : float }
  | Watchdog_timeout of { limit : Time.cycles; spent : Time.cycles }

type t = {
  core : int;
  component : string;
  cycle : Time.cycles;
  cause : cause;
}

exception Trap of t

let make ~core ~component ~cycle cause = { core; component; cycle; cause }
let trap t = raise (Trap t)

let cause_label = function
  | Illegal_inst _ -> "illegal-inst"
  | Local_oob _ -> "local-oob"
  | Page_fault _ -> "page-fault"
  | Dma_bus_error _ -> "dma-bus-error"
  | Acc_overflow _ -> "acc-overflow"
  | Watchdog_timeout _ -> "watchdog-timeout"

let cause_detail = function
  | Illegal_inst msg -> msg
  | Local_oob { target; row; rows; limit } ->
      Printf.sprintf "%s rows [%d, %d) exceed %d rows" target row (row + rows)
        limit
  | Page_fault { vpn; write } ->
      Printf.sprintf "%s of unmapped vpn 0x%x"
        (if write then "write" else "read")
        vpn
  | Dma_bus_error { vaddr; bytes } ->
      Printf.sprintf "burst of %d bytes at 0x%x failed" bytes vaddr
  | Acc_overflow { scale } -> Printf.sprintf "non-finite scale %g" scale
  | Watchdog_timeout { limit; spent } ->
      Printf.sprintf "layer spent %d cycles, budget %d" spent limit

let to_string t =
  Printf.sprintf "fault[%s] core=%d %s @%d: %s" (cause_label t.cause) t.core
    t.component t.cycle (cause_detail t.cause)

let pp fmt t = Format.pp_print_string fmt (to_string t)

let () =
  Printexc.register_printer (function
    | Trap t -> Some (to_string t)
    | _ -> None)
