(** The architectural fault taxonomy and the one trap exception.

    Every layer of the stack (ISA validation, scratchpad, mesh, DMA,
    virtual memory, runtime watchdog) reports error conditions through the
    same typed channel: a {!cause} wrapped in a {!t} carrying the faulting
    core, the registry name of the component that detected it, and the
    simulated cycle, raised as {!Trap}. Recovery layers (the runtime's
    fault policies) match on the cause; reporting layers only need the
    pretty-printers. *)

(** What went wrong, with the architecturally relevant payload. *)
type cause =
  | Illegal_inst of string
      (** malformed or semantically invalid command (bad field range,
          compute without preload, unsupported dataflow, ...) *)
  | Local_oob of { target : string; row : int; rows : int; limit : int }
      (** scratchpad/accumulator access past the end of [target]:
          rows [row, row+rows) against a memory of [limit] rows *)
  | Page_fault of { vpn : int; write : bool }
      (** translation of an unmapped virtual page *)
  | Dma_bus_error of { vaddr : int; bytes : int }
      (** a DMA burst segment failed on the bus (injected or modeled) *)
  | Acc_overflow of { scale : float }
      (** non-finite scale factor configured for the accumulator
          read-out / load path (NaN or infinity would poison every MAC) *)
  | Watchdog_timeout of { limit : Time.cycles; spent : Time.cycles }
      (** a layer exceeded the runtime's per-layer cycle budget *)

type t = {
  core : int;  (** faulting core index; -1 when not core-attributed *)
  component : string;  (** engine-registry name of the detecting component *)
  cycle : Time.cycles;  (** simulated time when the fault was detected *)
  cause : cause;
}

exception Trap of t
(** The uniform structured trap. Raised by {!trap} / [Engine.trap]; caught
    by the runtime's fault policies. *)

val make : core:int -> component:string -> cycle:Time.cycles -> cause -> t

val trap : t -> 'a
(** Raises {!Trap}. Components without an engine use this directly;
    engine-attached components should prefer [Engine.trap] so the fault is
    also counted and streamed as an event. *)

val cause_label : cause -> string
(** Short kebab-case tag of the cause constructor ("page-fault", ...). *)

val cause_detail : cause -> string
(** Human-readable payload of the cause. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
