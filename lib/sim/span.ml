type span = {
  id : int;
  parent : int;
  name : string;
  cat : string;
  component : string;
  t0 : Time.cycles;
  mutable t1 : Time.cycles;
  args : (string * string) list;
}

let dummy =
  {
    id = -1;
    parent = -1;
    name = "";
    cat = "";
    component = "";
    t0 = 0;
    t1 = 0;
    args = [];
  }

type t = {
  mutable buf : span array;
  mutable len : int;
  (* scope (core prefix of the component name) -> stack of open span ids *)
  stacks : (string, int list ref) Hashtbl.t;
  (* memoized component -> scope for prefixed names; full runs see the
     same dozen components millions of times *)
  scope_memo : (string, string) Hashtbl.t;
  mutable current_scope : string;
  mutable orphans : int;
  mutable forced : int;
  acquire_spans : string -> bool;
}

let no_acquire_spans _ = false

let create ?(acquire_spans = no_acquire_spans) () =
  {
    buf = Array.make 256 dummy;
    len = 0;
    stacks = Hashtbl.create 8;
    scope_memo = Hashtbl.create 16;
    current_scope = "";
    orphans = 0;
    forced = 0;
    acquire_spans;
  }

let count t = t.len

let get t id =
  if id < 0 || id >= t.len then invalid_arg "Span.get: id out of range";
  t.buf.(id)

let iter t f =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done

let to_list t = List.init t.len (fun i -> t.buf.(i))
let orphan_closes t = t.orphans
let forced_closes t = t.forced

let open_count t =
  Hashtbl.fold (fun _ stack acc -> acc + List.length !stack) t.stacks 0

let push t span =
  if t.len = Array.length t.buf then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.buf 0 bigger 0 t.len;
    t.buf <- bigger
  end;
  t.buf.(t.len) <- span;
  t.len <- t.len + 1;
  span.id

(* Shared components carry no core prefix; their events attribute to the
   scope that most recently opened a span, which is the executing core
   because operations execute one at a time. *)
let scope_of t component =
  match Hashtbl.find_opt t.scope_memo component with
  | Some s -> s
  | None -> (
      match String.index_opt component '/' with
      | Some i ->
          let s = String.sub component 0 i in
          Hashtbl.replace t.scope_memo component s;
          s
      | None -> if t.current_scope = "" then component else t.current_scope)

let stack_for t scope =
  match Hashtbl.find_opt t.stacks scope with
  | Some s -> s
  | None ->
      let s = ref [] in
      Hashtbl.add t.stacks scope s;
      s

let on_event t (ev : Engine.event) =
  match ev with
  | Engine.Span_open { component; time; name; cat; args } ->
      let scope = scope_of t component in
      t.current_scope <- scope;
      let stack = stack_for t scope in
      let parent = match !stack with [] -> -1 | p :: _ -> p in
      let id =
        push t
          { id = t.len; parent; name; cat; component; t0 = time; t1 = -1; args }
      in
      stack := id :: !stack
  | Engine.Span_close { component; time; name } ->
      let scope = scope_of t component in
      let stack = stack_for t scope in
      if List.exists (fun id -> t.buf.(id).name = name) !stack then begin
        (* Close the innermost open span with this name; anything opened
           inside it that never closed is force-closed at the same stamp
           so the tree stays well-formed. *)
        let rec close = function
          | [] -> []
          | id :: rest ->
              let s = t.buf.(id) in
              s.t1 <- time;
              if s.name = name then rest
              else begin
                t.forced <- t.forced + 1;
                close rest
              end
        in
        stack := close !stack
      end
      else t.orphans <- t.orphans + 1
  | Engine.Acquire { component; time; start; finish } ->
      if t.acquire_spans component then begin
        let scope = scope_of t component in
        let stack = stack_for t scope in
        let parent = match !stack with [] -> -1 | p :: _ -> p in
        let args =
          if start > time then [ ("queue", string_of_int (start - time)) ]
          else []
        in
        ignore
          (push t
             {
               id = t.len;
               parent;
               name = component;
               cat = "acquire";
               component;
               t0 = start;
               t1 = finish;
               args;
             })
      end
  | Engine.Transfer _ | Engine.Translate _ | Engine.Note _ | Engine.Fault _ ->
      ()

let finalize t ~horizon =
  Hashtbl.iter
    (fun _ stack ->
      List.iter
        (fun id ->
          let s = t.buf.(id) in
          if s.t1 < 0 then begin
            s.t1 <- horizon;
            t.forced <- t.forced + 1
          end)
        !stack;
      stack := [])
    t.stacks

let attach ?acquire_spans engine =
  let t = create ?acquire_spans () in
  Engine.add_sink engine (on_event t);
  t

let emit_open engine ~component ~time ?(cat = "span") ?(args = []) name =
  if Engine.live engine then
    Engine.emit engine (Engine.Span_open { component; time; name; cat; args })

let emit_close engine ~component ~time name =
  if Engine.live engine then
    Engine.emit engine (Engine.Span_close { component; time; name })
