(** Persistent, content-addressed result cache for DSE sweeps.

    Layout: [<dir>/v<version>/<md5-of-canonical-point>.json], one
    {!Outcome} per file. The version stamp partitions the cache by
    simulator behavior: {!sim_version} must be bumped whenever a change
    anywhere in the stack alters cycle counts or synthesis estimates, so
    stale results can never be replayed. Point-level invalidation is
    automatic — any config change changes the point's digest.

    Writes are atomic (temp file + rename), so concurrent workers — or
    concurrent sweep processes sharing a cache directory — can race on the
    same key and at worst redundantly store identical bytes. Unreadable or
    stale-schema files read as misses. *)

val sim_version : string
(** Current behavioral version of the simulator + synthesis stack. *)

type t

val create : ?version:string -> dir:string -> unit -> t
(** [version] defaults to {!sim_version}; tests pass explicit versions to
    exercise invalidation. Directories are created lazily on first store. *)

val dir : t -> string
val find : t -> Point.t -> Outcome.t option
val store : t -> Point.t -> Outcome.t -> unit
val path_of : t -> Point.t -> string
