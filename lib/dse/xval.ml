module J = Gem_util.Jsonx
module Runtime = Gem_sw.Runtime
module Backend = Gem_sw.Backend

(* --- report ------------------------------------------------------------------- *)

type layer_error = {
  xl_name : string;
  xl_class : string;
  xl_cycle : int;
  xl_analytic : int;
  xl_rel_err : float;
}

type network_report = {
  xn_model : string;
  xn_scale : int;
  xn_cycle_total : int;
  xn_analytic_total : int;
  xn_rel_err : float;  (** signed: (analytic - cycle) / cycle *)
  xn_cycle_wall_s : float;
  xn_analytic_wall_s : float;
  xn_speedup : float;
  xn_layers : layer_error list;
}

type report = {
  x_scale : int;
  x_networks : network_report list;
  x_max_abs_err : float;
  x_mean_abs_err : float;
  x_min_speedup : float;
}

let rel_err ~cycle ~analytic =
  if cycle = 0 then if analytic = 0 then 0. else infinity
  else float_of_int (analytic - cycle) /. float_of_int cycle

(* --- validation run ----------------------------------------------------------- *)

let resolve_model ~scale name =
  match Gem_dnn.Model_zoo.find name with
  | None -> invalid_arg (Printf.sprintf "Gem_dse.Xval: unknown model %S" name)
  | Some m ->
      if scale = 1 then m else Gem_dnn.Model_zoo.scale_model ~factor:scale m

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let validate_model ?(config = Gem_soc.Soc_config.default)
    ?(mode = Runtime.Accel { im2col_on_accel = true }) ~scale name =
  let model = resolve_model ~scale name in
  let rq = Backend.request ~config [| (model, mode) |] in
  let cycle_r, cycle_wall = timed (fun () -> Gem_sw.Backend_cycle.run rq) in
  let ana_r, ana_wall = timed (fun () -> Gem_sw.Backend_analytic.run rq) in
  let cycle = cycle_r.(0) and ana = ana_r.(0) in
  let layers =
    (* Both backends walk the same lowering, so the layer lists align
       one-to-one; a mismatch is a seam bug worth failing loudly on. *)
    try
      List.map2
        (fun (c : Runtime.layer_record) (a : Runtime.layer_record) ->
          if c.Runtime.lr_name <> a.Runtime.lr_name then
            invalid_arg
              (Printf.sprintf "Gem_dse.Xval: layer mismatch %S vs %S"
                 c.Runtime.lr_name a.Runtime.lr_name);
          {
            xl_name = c.Runtime.lr_name;
            xl_class = Gem_dnn.Layer.class_name c.Runtime.lr_class;
            xl_cycle = c.Runtime.lr_cycles;
            xl_analytic = a.Runtime.lr_cycles;
            xl_rel_err =
              rel_err ~cycle:c.Runtime.lr_cycles ~analytic:a.Runtime.lr_cycles;
          })
        cycle.Runtime.r_layers ana.Runtime.r_layers
    with Invalid_argument _ ->
      invalid_arg "Gem_dse.Xval: backends produced different layer counts"
  in
  {
    xn_model = name;
    xn_scale = scale;
    xn_cycle_total = cycle.Runtime.r_total_cycles;
    xn_analytic_total = ana.Runtime.r_total_cycles;
    xn_rel_err =
      rel_err ~cycle:cycle.Runtime.r_total_cycles
        ~analytic:ana.Runtime.r_total_cycles;
    xn_cycle_wall_s = cycle_wall;
    xn_analytic_wall_s = ana_wall;
    xn_speedup = (if ana_wall > 0. then cycle_wall /. ana_wall else infinity);
    xn_layers = layers;
  }

let default_models = List.map (fun m -> m.Gem_dnn.Layer.model_name) Gem_dnn.Model_zoo.all

let validate ?config ?mode ?(models = default_models) ?(scale = 1) () =
  let networks = List.map (validate_model ?config ?mode ~scale) models in
  let abs_errs = List.map (fun n -> Float.abs n.xn_rel_err) networks in
  {
    x_scale = scale;
    x_networks = networks;
    x_max_abs_err = List.fold_left Float.max 0. abs_errs;
    x_mean_abs_err =
      (match abs_errs with
      | [] -> 0.
      | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l));
    x_min_speedup =
      List.fold_left
        (fun acc n -> Float.min acc n.xn_speedup)
        infinity networks;
  }

(* --- JSON --------------------------------------------------------------------- *)

let layer_to_json l =
  J.Obj
    [
      ("name", J.String l.xl_name);
      ("class", J.String l.xl_class);
      ("cycle", J.Int l.xl_cycle);
      ("analytic", J.Int l.xl_analytic);
      ("rel_err", J.Float l.xl_rel_err);
    ]

let network_to_json n =
  J.Obj
    [
      ("model", J.String n.xn_model);
      ("scale", J.Int n.xn_scale);
      ("cycle_total", J.Int n.xn_cycle_total);
      ("analytic_total", J.Int n.xn_analytic_total);
      ("rel_err", J.Float n.xn_rel_err);
      ("cycle_wall_s", J.Float n.xn_cycle_wall_s);
      ("analytic_wall_s", J.Float n.xn_analytic_wall_s);
      ("speedup", J.Float n.xn_speedup);
      ("layers", J.List (List.map layer_to_json n.xn_layers));
    ]

let report_to_json r =
  J.Obj
    [
      ("scale", J.Int r.x_scale);
      ("max_abs_err", J.Float r.x_max_abs_err);
      ("mean_abs_err", J.Float r.x_mean_abs_err);
      ("min_speedup", J.Float r.x_min_speedup);
      ("networks", J.List (List.map network_to_json r.x_networks));
    ]

(* --- error budget ------------------------------------------------------------- *)

type budget = {
  b_default_abs_err : float;
  b_per_model : (string * float) list;
  b_min_speedup : float;
}

let budget_of_json json =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (J.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "budget: bad or missing field %S" name)
  in
  let* default_abs = field "default_abs_err" J.to_float in
  let* min_speedup = field "min_speedup" J.to_float in
  let* per_model =
    match J.member "per_model" json with
    | None -> Ok []
    | Some o -> (
        match J.to_obj o with
        | None -> Error "budget: per_model is not an object"
        | Some pairs ->
            let conv =
              List.filter_map
                (fun (k, v) -> Option.map (fun f -> (k, f)) (J.to_float v))
                pairs
            in
            if List.length conv = List.length pairs then Ok conv
            else Error "budget: non-float per_model entry")
  in
  Ok
    {
      b_default_abs_err = default_abs;
      b_per_model = per_model;
      b_min_speedup = min_speedup;
    }

let load_budget path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let s = really_input_string ic (in_channel_length ic) in
      Result.bind (J.of_string s) budget_of_json)

let model_budget b name =
  Option.value ~default:b.b_default_abs_err (List.assoc_opt name b.b_per_model)

let check report budget =
  let failures =
    List.filter_map
      (fun n ->
        let allowed = model_budget budget n.xn_model in
        if Float.abs n.xn_rel_err > allowed then
          Some
            (Printf.sprintf "%s: |rel err| %.2f%% exceeds budget %.2f%%"
               n.xn_model
               (100. *. Float.abs n.xn_rel_err)
               (100. *. allowed))
        else None)
      report.x_networks
  in
  let failures =
    if report.x_min_speedup < budget.b_min_speedup then
      failures
      @ [
          Printf.sprintf "min speedup %.0fx below required %.0fx"
            report.x_min_speedup budget.b_min_speedup;
        ]
    else failures
  in
  if failures = [] then Ok () else Error failures
