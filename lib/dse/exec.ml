module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config
module Runtime = Gem_sw.Runtime
module H = Gem_vm.Hierarchy
module Layer = Gem_dnn.Layer
module P = Gem_obs.Profile

type failure = {
  f_point : Point.t;
  f_index : int;
  f_attempts : int;
  f_reason : string;
}

type run_result = {
  results : (Point.t * Outcome.t) array;
  simulated : int;
  cached : int;
  salvaged : int;
  quarantined : failure list;
}

(* --- single-point evaluation ------------------------------------------------ *)

let all_classes =
  [
    Layer.Class_conv;
    Layer.Class_depthwise;
    Layer.Class_matmul;
    Layer.Class_resadd;
    Layer.Class_pool;
    Layer.Class_elementwise;
  ]

(* Evaluation with the analytic backend: no SoC elaboration at all — the
   estimator prices the lowering closed-form and supplies its own
   TLB/utilization tallies in place of the engine observers. *)
let evaluate_analytic (p : Point.t) base model : Outcome.t =
  let ncores = List.length p.Point.soc.Soc_config.cores in
  let jobs = Array.make ncores (model, p.Point.mode) in
  let rq = Gem_sw.Backend.request ~config:p.Point.soc jobs in
  let details = Gem_sw.Backend_analytic.estimate rq in
  let results = Array.map (fun d -> d.Gem_sw.Backend_analytic.d_result) details in
  let total =
    Array.fold_left (fun acc r -> max acc r.Runtime.r_total_cycles) 0 results
  in
  let sum f = Array.fold_left (fun acc d -> acc + f d) 0 details in
  let tlb_requests = sum (fun d -> d.Gem_sw.Backend_analytic.d_tlb_requests) in
  let tlb_walks = sum (fun d -> d.Gem_sw.Backend_analytic.d_tlb_walks) in
  let tlb_shared = sum (fun d -> d.Gem_sw.Backend_analytic.d_tlb_shared) in
  let class_cycles =
    List.map
      (fun klass ->
        let cycles =
          Array.fold_left
            (fun acc r ->
              acc
              + Option.value ~default:0
                  (List.assoc_opt klass (Runtime.cycles_by_class r)))
            0 results
        in
        (Layer.class_name klass, cycles))
      all_classes
  in
  let comp_util =
    let horizon = float_of_int (max 1 total) in
    Array.to_list
      (Array.mapi
         (fun core d ->
           ( Printf.sprintf "core%d/mesh" core,
             float_of_int d.Gem_sw.Backend_analytic.d_mesh_busy /. horizon ))
         details)
  in
  {
    base with
    Outcome.backend = Gem_sw.Backend.kind_name Gem_sw.Backend.Analytic;
    total_cycles = total;
    per_core_cycles = Array.map (fun r -> r.Runtime.r_total_cycles) results;
    class_cycles;
    tlb_requests;
    tlb_walks;
    tlb_shared_hits = tlb_shared;
    tlb_hit_rate =
      (if tlb_requests = 0 then 0.
       else 1. -. (float_of_int tlb_walks /. float_of_int tlb_requests));
    comp_util;
  }

(* Serving evaluation: the point's SoC runs the open-loop scenario (on
   either backend) and the outcome carries the latency/throughput block.
   total_cycles becomes the serving horizon — the batch-1 fields keep
   their zeroes so nobody mistakes a serving outcome for an inference
   outcome. *)
let evaluate_serve (p : Point.t) base (spec : Point.serve_spec) : Outcome.t =
  let parsed name = function
    | Ok v -> v
    | Error e ->
        invalid_arg (Printf.sprintf "Gem_dse.Exec: bad %s: %s" name e)
  in
  let scenario =
    {
      Gem_serve.Serve.sv_model = p.Point.model;
      sv_scale = p.Point.scale;
      sv_soc = p.Point.soc;
      sv_backend = p.Point.backend;
      sv_mode = p.Point.mode;
      sv_arrival =
        parsed "arrival" (Gem_serve.Arrival.spec_of_string spec.Point.ss_arrival);
      sv_seed = spec.Point.ss_seed;
      sv_batch =
        parsed "batch policy"
          (Gem_serve.Batch.policy_of_string spec.Point.ss_batch);
      sv_slos_ms = [ spec.Point.ss_slo_ms ];
      sv_duration_ms = spec.Point.ss_duration_ms;
      sv_warmup = true;
    }
  in
  let r = Gem_serve.Serve.run scenario in
  let rp = r.Gem_serve.Serve.sr_report in
  let sum = rp.Gem_serve.Slo.rp_latency in
  let ms c = c /. 1e6 in
  {
    base with
    Outcome.backend = Gem_sw.Backend.kind_name p.Point.backend;
    total_cycles = rp.Gem_serve.Slo.rp_horizon;
    comp_util = r.Gem_serve.Serve.sr_comp_util;
    comp_wait = r.Gem_serve.Serve.sr_comp_wait;
    comp_p95_lat = r.Gem_serve.Serve.sr_comp_p95;
    serve_offered = rp.Gem_serve.Slo.rp_offered;
    serve_completed = rp.Gem_serve.Slo.rp_completed;
    serve_p50_ms = ms sum.Gem_util.Stats.Histogram.p50;
    serve_p95_ms = ms sum.Gem_util.Stats.Histogram.p95;
    serve_p99_ms = ms sum.Gem_util.Stats.Histogram.p99;
    serve_max_ms = ms sum.Gem_util.Stats.Histogram.max;
    serve_throughput_rps = rp.Gem_serve.Slo.rp_throughput_rps;
    serve_slo_attainment =
      (match rp.Gem_serve.Slo.rp_attainment with
      | (_, a) :: _ -> a
      | [] -> 1.0);
  }

let evaluate (p : Point.t) : Outcome.t =
  let accel =
    match p.Point.soc.Soc_config.cores with
    | c :: _ -> c.Soc_config.accel
    | [] -> invalid_arg "Gem_dse.Exec.evaluate: SoC has no cores"
  in
  let synth = Gemmini.Synthesis.estimate ~host:p.Point.synth_host accel in
  let base =
    {
      Outcome.empty with
      Outcome.fmax_ghz = synth.Gemmini.Synthesis.fmax_ghz;
      total_area_um2 = synth.Gemmini.Synthesis.total_area_um2;
      array_area_um2 = synth.Gemmini.Synthesis.spatial_array_area_um2;
      power_mw = synth.Gemmini.Synthesis.power_mw;
    }
  in
  if not p.Point.simulate then base
  else begin
    match p.Point.serve with
    | Some spec -> evaluate_serve p base spec
    | None ->
    let model =
      match Gem_dnn.Model_zoo.find p.Point.model with
      | Some m -> m
      | None ->
          invalid_arg
            (Printf.sprintf "Gem_dse.Exec.evaluate: unknown model %S"
               p.Point.model)
    in
    let model =
      if p.Point.scale = 1 then model
      else Gem_dnn.Model_zoo.scale_model ~factor:p.Point.scale model
    in
    match p.Point.backend with
    | Gem_sw.Backend.Analytic -> evaluate_analytic p base model
    | Gem_sw.Backend.Cycle ->
    let soc = Soc.create p.Point.soc in
    (* Histograms and series only — span recording would churn memory for
       hundreds of thousands of spans per point with no reader. *)
    let collector = Gem_sim.Export.attach ~spans:false (Soc.engine soc) in
    let hierarchy = Soc.tlb (Soc.core soc 0) in
    let series =
      Option.map
        (fun window -> Gem_util.Stats.Series.create ~window)
        p.Point.tlb_window
    in
    Option.iter
      (fun s ->
        H.set_observer hierarchy
          (Some
             (fun now level ->
               let miss =
                 match level with
                 | H.Filter | H.Private -> 0.
                 | H.Shared | H.Walk -> 1.
               in
               Gem_util.Stats.Series.add s ~time:(float_of_int now) miss)))
      series;
    let ncores = List.length p.Point.soc.Soc_config.cores in
    let rq =
      Gem_sw.Backend.request ~config:p.Point.soc
        (Array.make ncores (model, p.Point.mode))
    in
    let results = Gem_sw.Backend_cycle.run_on soc rq in
    Option.iter (fun _ -> H.set_observer hierarchy None) series;
    let total =
      Array.fold_left (fun acc r -> max acc r.Runtime.r_total_cycles) 0 results
    in
    let engine_stats = Gem_sim.Engine.stats (Soc.engine soc) in
    let comp_util =
      let horizon = float_of_int (max 1 total) in
      List.map
        (fun (s : Gem_sim.Engine.stat) ->
          ( s.Gem_sim.Engine.stat_name,
            float_of_int s.Gem_sim.Engine.stat_busy /. horizon ))
        engine_stats
    in
    let comp_wait =
      List.map
        (fun (s : Gem_sim.Engine.stat) ->
          (s.Gem_sim.Engine.stat_name, s.Gem_sim.Engine.stat_wait))
        engine_stats
    in
    let comp_p95_lat =
      List.map
        (fun (name, _, (s : Gem_util.Stats.Histogram.summary)) ->
          (name, s.Gem_util.Stats.Histogram.p95))
        (Gem_sim.Export.latency collector)
    in
    let class_cycles =
      List.map
        (fun klass ->
          let cycles =
            Array.fold_left
              (fun acc r ->
                acc
                + Option.value ~default:0
                    (List.assoc_opt klass (Runtime.cycles_by_class r)))
              0 results
          in
          (Layer.class_name klass, cycles))
        all_classes
    in
    {
      base with
      Outcome.backend = Gem_sw.Backend.kind_name Gem_sw.Backend.Cycle;
      total_cycles = total;
      per_core_cycles =
        Array.map (fun r -> r.Runtime.r_total_cycles) results;
      class_cycles;
      tlb_requests = H.requests hierarchy;
      tlb_walks = H.walks hierarchy;
      tlb_shared_hits = H.shared_hits hierarchy;
      tlb_hit_rate = H.effective_hit_rate hierarchy;
      tlb_same_page_reads = H.same_page_fraction_reads hierarchy;
      tlb_same_page_writes = H.same_page_fraction_writes hierarchy;
      tlb_windows =
        (match series with
        | Some s -> Gem_util.Stats.Series.windows s
        | None -> [||]);
      l2_miss_rate = Gem_mem.Cache.miss_rate (Soc.l2 soc);
      comp_util;
      comp_wait;
      comp_p95_lat;
    }
  end

(* --- environment defaults --------------------------------------------------- *)

let default_jobs () =
  match Sys.getenv_opt "GEMMINI_DSE_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some 0 -> Domain.recommended_domain_count ()
      | Some n when n > 0 -> n
      | _ -> 1)

let default_cache () =
  match Sys.getenv_opt "GEMMINI_DSE_CACHE" with
  | None | Some "" -> None
  | Some dir -> Some (Cache.create ~dir ())

(* --- worker pool ------------------------------------------------------------ *)

(* Work-stealing by atomic index: deterministic because slot [i] of [out]
   only ever receives the result of point [i]. *)
let pool_map ~jobs f points =
  let n = Array.length points in
  let out = Array.make n None in
  if jobs <= 1 || n <= 1 then
    Array.iteri (fun i p -> out.(i) <- Some (Ok (f i p))) points
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (out.(i) <-
             (match f i points.(i) with
             | v -> Some (Ok v)
             | exception e -> Some (Error e)));
          loop ()
        end
      in
      loop ()
    in
    let spawned = min (jobs - 1) (n - 1) in
    let domains = List.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end;
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error e) -> raise e
      | None -> assert false)
    out

(* --- sweep journal ------------------------------------------------------------ *)

(* A crash-consistent record of every outcome the sweep has completed:
   rewritten atomically (same-dir temp + rename, pid- and domain-tagged)
   after each completion, so a SIGKILL at any instant leaves either the
   previous journal or the new one — and [--resume] salvages whichever
   survived. Entries are keyed by point digest: the journal is valid
   across reorderings but never across config changes. *)

let read_journal_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let journal_load path =
  let tbl = Hashtbl.create 64 in
  (if Sys.file_exists path then
     (* A truncated or otherwise corrupt journal salvages nothing — the
        sweep just re-simulates, it never errors out. *)
     match Gem_util.Jsonx.of_string (read_journal_file path) with
     | Error _ | (exception Sys_error _) -> ()
     | Ok json -> (
         match json with
         | Gem_util.Jsonx.Obj kvs -> (
             match List.assoc_opt "entries" kvs with
             | Some (Gem_util.Jsonx.List entries) ->
                 List.iter
                   (fun entry ->
                     match entry with
                     | Gem_util.Jsonx.List
                         [ Gem_util.Jsonx.String digest; oj ] -> (
                         match Outcome.of_json oj with
                         | Ok o -> Hashtbl.replace tbl digest o
                         | Error _ -> ())
                     | _ -> ())
                   entries
             | _ -> ())
         | _ -> ()));
  tbl

let journal_write path tbl =
  let entries =
    Hashtbl.fold (fun d o acc -> (d, o) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (d, o) ->
           Gem_util.Jsonx.List
             [ Gem_util.Jsonx.String d; Outcome.to_json o ])
  in
  let json = Gem_util.Jsonx.Obj [ ("entries", Gem_util.Jsonx.List entries) ] in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Gem_util.Jsonx.to_string json));
  Sys.rename tmp path

(* --- the executor --------------------------------------------------------------- *)

let run ?jobs ?cache ?(retries = 0) ?(backoff_ms = 100) ?deadline ?journal
    ?(resume = false) points =
  let jobs =
    match jobs with None -> default_jobs () | Some 0 -> Domain.recommended_domain_count () | Some j -> j
  in
  let cache = match cache with None -> default_cache () | Some c -> c in
  (* Legacy contract: with no retry budget and no deadline, a worker
     exception propagates to the caller exactly as it always has. Any
     hardening option switches failures to quarantine semantics. *)
  let quarantine_mode = retries > 0 || deadline <> None in
  let salvage =
    match journal with
    | Some path when resume -> journal_load path
    | _ -> Hashtbl.create 0
  in
  (* The completion record starts as the salvaged set so rewrites never
     lose what a previous (killed) run already paid for. *)
  let completed = Hashtbl.copy salvage in
  let jlock = Mutex.create () in
  let record_completion digest outcome =
    match journal with
    | None -> ()
    | Some path ->
        Mutex.lock jlock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock jlock)
          (fun () ->
            Hashtbl.replace completed digest outcome;
            journal_write path completed)
  in
  let eval_once point =
    let t0 = Unix.gettimeofday () in
    (* The probe state is per-domain (DLS), so worker pools attribute
       their evaluation time without cross-domain contention. *)
    let outcome =
      if !P.on then begin
        P.enter P.dse;
        Fun.protect
          ~finally:(fun () -> P.leave P.dse)
          (fun () -> evaluate point)
      end
      else evaluate point
    in
    let dt = Unix.gettimeofday () -. t0 in
    match deadline with
    | Some limit when dt > limit ->
        Error (Printf.sprintf "deadline exceeded: %.2fs > %.2fs" dt limit)
    | _ -> Ok outcome
  in
  let eval_with_retry index point =
    let rec go attempt =
      if attempt > 1 then
        (* Exponential backoff between attempts: transient causes (host
           memory pressure, a busy machine tripping the deadline) get
           room to clear. *)
        Unix.sleepf
          (float_of_int backoff_ms *. (2. ** float_of_int (attempt - 2))
          /. 1000.);
      let verdict =
        if quarantine_mode then
          match eval_once point with
          | v -> v
          | exception e -> Error (Printexc.to_string e)
        else eval_once point
      in
      match verdict with
      | Ok outcome -> Ok outcome
      | Error reason ->
          if attempt <= retries then go (attempt + 1)
          else
            Error
              {
                f_point = point;
                f_index = index;
                f_attempts = attempt;
                f_reason = reason;
              }
    in
    go 1
  in
  let evaluate_memo i point =
    match Hashtbl.find_opt salvage (Point.digest point) with
    | Some outcome -> (Some outcome, `Salvaged)
    | None -> (
        let digest = Point.digest point in
        match cache with
        | None -> (
            match eval_with_retry i point with
            | Ok outcome ->
                record_completion digest outcome;
                (Some outcome, `Simulated)
            | Error f -> (None, `Quarantined f))
        | Some c -> (
            match Cache.find c point with
            | Some outcome ->
                record_completion digest outcome;
                (Some outcome, `Cached)
            | None -> (
                match eval_with_retry i point with
                | Ok outcome ->
                    Cache.store c point outcome;
                    record_completion digest outcome;
                    (Some outcome, `Simulated)
                | Error f -> (None, `Quarantined f))))
  in
  let evaluated = pool_map ~jobs evaluate_memo points in
  let simulated = ref 0 and cached = ref 0 and salvaged = ref 0 in
  let quarantined = ref [] in
  Array.iter
    (fun (_, src) ->
      match src with
      | `Simulated -> incr simulated
      | `Cached -> incr cached
      | `Salvaged -> incr salvaged
      | `Quarantined f -> quarantined := f :: !quarantined)
    evaluated;
  let results =
    Array.to_list (Array.map2 (fun p (o, _) -> (p, o)) points evaluated)
    |> List.filter_map (fun (p, o) -> Option.map (fun o -> (p, o)) o)
    |> Array.of_list
  in
  {
    results;
    simulated = !simulated;
    cached = !cached;
    salvaged = !salvaged;
    quarantined = List.rev !quarantined;
  }

(* --- metrics --------------------------------------------------------------- *)

(* Registered from the coordinator domain after the pool has drained, so
   every value is a settled tally — no sampling races with workers. *)
let register_metrics reg (r : run_result) =
  let module M = Gem_obs.Metrics in
  M.int reg "dse.points" (Array.length r.results + List.length r.quarantined);
  M.int reg "dse.evaluated" (Array.length r.results);
  M.int reg "dse.simulated" r.simulated;
  M.int reg "dse.cached" r.cached;
  M.int reg "dse.salvaged" r.salvaged;
  M.int reg "dse.quarantined" (List.length r.quarantined);
  let attempts =
    List.fold_left (fun acc f -> acc + f.f_attempts) 0 r.quarantined
  in
  M.int reg "dse.failed_attempts" attempts
