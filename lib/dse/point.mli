(** One design-space point: everything the {!Exec} evaluator needs to
    produce an {!Outcome} — the full SoC configuration, the workload, the
    execution mode, and which measurements to take.

    A point has a {e canonical serialization} covering every field that
    can influence the measurement (the display [label] is excluded), and a
    content hash of that serialization keys the persistent result cache:
    two points evaluate to the same outcome iff they serialize to the same
    bytes. When a new field is added here it must be appended to
    {!canonical}, which changes the hashes and naturally invalidates stale
    cache entries. *)

type t = {
  label : string;  (** display name in tables/CSV; not part of the hash *)
  soc : Gem_soc.Soc_config.t;
  model : string;  (** {!Gem_dnn.Model_zoo} name *)
  scale : int;  (** channel-scale divisor; 1 = full size *)
  mode : Gem_sw.Runtime.mode;
  backend : Gem_sw.Backend.kind;
      (** which execution backend prices the workload; distinct backends
          hash to distinct cache entries *)
  simulate : bool;
      (** when false, only the analytic synthesis estimate is computed
          (e.g. the Fig. 3 area/fmax/power sweep) *)
  synth_host : Gemmini.Synthesis.host_cpu;
  tlb_window : float option;
      (** when set, record the core-0 private-TLB miss-rate time series in
          windows of this many cycles (the Fig. 4 profile) *)
}

val make :
  ?label:string ->
  ?soc:Gem_soc.Soc_config.t ->
  ?model:string ->
  ?scale:int ->
  ?mode:Gem_sw.Runtime.mode ->
  ?backend:Gem_sw.Backend.kind ->
  ?simulate:bool ->
  ?synth_host:Gemmini.Synthesis.host_cpu ->
  ?tlb_window:float ->
  unit ->
  t
(** Defaults: empty label, {!Gem_soc.Soc_config.default}, ResNet50 at full
    scale, accelerated mode with hardware im2col, the cycle-accurate
    backend, timing simulation on, Rocket host for the synthesis
    estimate, no TLB time series. *)

val with_accel : Gemmini.Params.t -> t -> t
(** Replaces the accelerator of every core (validated). *)

val with_backend : Gem_sw.Backend.kind -> t -> t

val canonical : t -> string
(** Canonical serialization of every measurement-relevant field. Floats
    are rendered in hex ([%h]) so the serialization is bit-exact. *)

val digest : t -> string
(** Hex MD5 of {!canonical} — the cache key. *)
