(** One design-space point: everything the {!Exec} evaluator needs to
    produce an {!Outcome} — the full SoC configuration, the workload, the
    execution mode, and which measurements to take.

    A point has a {e canonical serialization} covering every field that
    can influence the measurement (the display [label] is excluded), and a
    content hash of that serialization keys the persistent result cache:
    two points evaluate to the same outcome iff they serialize to the same
    bytes. When a new field is added here it must be appended to
    {!canonical}, which changes the hashes and naturally invalidates stale
    cache entries. *)

type serve_spec = {
  ss_arrival : string;
      (** {!Gem_serve.Arrival.spec_of_string} syntax, e.g. ["poisson:2000"] *)
  ss_batch : string;
      (** {!Gem_serve.Batch.policy_of_string} syntax, e.g. ["fixed:4"] *)
  ss_slo_ms : float;
  ss_duration_ms : float;
  ss_seed : int;
}
(** A serving workload riding on a design point: instead of one inference
    per core, the evaluator drives the SoC with this open-loop arrival
    stream and reports latency/throughput/SLO numbers. Specs are kept as
    strings (parsed at evaluation time) so the canonical serialization
    stays trivially stable. *)

val serve_default : serve_spec
(** Poisson 2000 req/s, no batching, 10 ms SLO, 5 ms window, seed 42. *)

type t = {
  label : string;  (** display name in tables/CSV; not part of the hash *)
  soc : Gem_soc.Soc_config.t;
  model : string;  (** {!Gem_dnn.Model_zoo} name *)
  scale : int;  (** channel-scale divisor; 1 = full size *)
  mode : Gem_sw.Runtime.mode;
  backend : Gem_sw.Backend.kind;
      (** which execution backend prices the workload; distinct backends
          hash to distinct cache entries *)
  simulate : bool;
      (** when false, only the analytic synthesis estimate is computed
          (e.g. the Fig. 3 area/fmax/power sweep) *)
  synth_host : Gemmini.Synthesis.host_cpu;
  tlb_window : float option;
      (** when set, record the core-0 private-TLB miss-rate time series in
          windows of this many cycles (the Fig. 4 profile) *)
  serve : serve_spec option;
      (** when set, the point measures a serving scenario rather than a
          single batch-1 inference *)
}

val make :
  ?label:string ->
  ?soc:Gem_soc.Soc_config.t ->
  ?model:string ->
  ?scale:int ->
  ?mode:Gem_sw.Runtime.mode ->
  ?backend:Gem_sw.Backend.kind ->
  ?simulate:bool ->
  ?synth_host:Gemmini.Synthesis.host_cpu ->
  ?tlb_window:float ->
  ?serve:serve_spec ->
  unit ->
  t
(** Defaults: empty label, {!Gem_soc.Soc_config.default}, ResNet50 at full
    scale, accelerated mode with hardware im2col, the cycle-accurate
    backend, timing simulation on, Rocket host for the synthesis
    estimate, no TLB time series. *)

val with_accel : Gemmini.Params.t -> t -> t
(** Replaces the accelerator of every core (validated). *)

val with_backend : Gem_sw.Backend.kind -> t -> t

val with_serve : serve_spec -> t -> t

val serve_or_default : t -> serve_spec
(** The point's serving spec, or {!serve_default} — what the serving
    sweep axes transform. *)

val canonical : t -> string
(** Canonical serialization of every measurement-relevant field. Floats
    are rendered in hex ([%h]) so the serialization is bit-exact. *)

val digest : t -> string
(** Hex MD5 of {!canonical} — the cache key. *)
