(** Cross-validation of the analytic backend against the cycle-accurate
    engine.

    Runs every requested network through both backends on the same SoC
    configuration, joins the per-layer records (both backends walk the
    same {!Gem_sw.Lower} plan, so the lists align one-to-one), and
    reports signed relative errors and the wall-clock speedup. CI gates
    the report against the committed error budget ([XVAL_budget.json]):
    the estimator may drift only within the budget, and must stay at
    least [min_speedup] times faster than the simulator. *)

type layer_error = {
  xl_name : string;
  xl_class : string;
  xl_cycle : int;
  xl_analytic : int;
  xl_rel_err : float;
}

type network_report = {
  xn_model : string;
  xn_scale : int;
  xn_cycle_total : int;
  xn_analytic_total : int;
  xn_rel_err : float;  (** signed: (analytic - cycle) / cycle *)
  xn_cycle_wall_s : float;
  xn_analytic_wall_s : float;
  xn_speedup : float;
  xn_layers : layer_error list;
}

type report = {
  x_scale : int;
  x_networks : network_report list;
  x_max_abs_err : float;
  x_mean_abs_err : float;
  x_min_speedup : float;
}

val default_models : string list
(** Every {!Gem_dnn.Model_zoo} network, in zoo order. *)

val validate_model :
  ?config:Gem_soc.Soc_config.t ->
  ?mode:Gem_sw.Runtime.mode ->
  scale:int ->
  string ->
  network_report

val validate :
  ?config:Gem_soc.Soc_config.t ->
  ?mode:Gem_sw.Runtime.mode ->
  ?models:string list ->
  ?scale:int ->
  unit ->
  report
(** Defaults: the default SoC, accelerated mode, every zoo network at
    full scale. *)

val report_to_json : report -> Gem_util.Jsonx.t

(** {1 Error budget} *)

type budget = {
  b_default_abs_err : float;  (** allowed |rel err| unless overridden *)
  b_per_model : (string * float) list;
  b_min_speedup : float;
}

val budget_of_json : Gem_util.Jsonx.t -> (budget, string) result
val load_budget : string -> (budget, string) result

val check : report -> budget -> (unit, string list) result
(** [Error messages] lists every network over budget plus a speedup
    shortfall, if any. *)
