(** Emitters for sweep results: CSV and JSON renderings of
    [(point, outcome)] rows, pure functions of the result table so a
    cached sweep prints bytes identical to a fresh one. *)

val fps_1ghz : Outcome.t -> float
(** Frames per second at 1 GHz; 0 for synthesis-only outcomes. *)

val csv : (Point.t * Outcome.t) array -> string
(** Header + one row per point: label, model, scale, total_cycles,
    fps_1ghz, fmax_ghz, area_mm2, power_mw, tlb_hit_rate, l2_miss_rate.
    Fields containing commas/quotes/newlines are quoted. *)

val json : (Point.t * Outcome.t) array -> Gem_util.Jsonx.t
(** Array of [{label; model; scale; digest; outcome}] objects; [outcome]
    is the full {!Outcome.to_json} record. *)

val json_string : (Point.t * Outcome.t) array -> string
(** Pretty-printed {!json}, with a trailing newline. *)
