module Soc_config = Gem_soc.Soc_config
module Runtime = Gem_sw.Runtime

type serve_spec = {
  ss_arrival : string;
  ss_batch : string;
  ss_slo_ms : float;
  ss_duration_ms : float;
  ss_seed : int;
}

let serve_default =
  {
    ss_arrival = "poisson:2000";
    ss_batch = "none";
    ss_slo_ms = 10.0;
    ss_duration_ms = 5.0;
    ss_seed = 42;
  }

type t = {
  label : string;
  soc : Soc_config.t;
  model : string;
  scale : int;
  mode : Runtime.mode;
  backend : Gem_sw.Backend.kind;
  simulate : bool;
  synth_host : Gemmini.Synthesis.host_cpu;
  tlb_window : float option;
  serve : serve_spec option;
}

let make ?(label = "") ?(soc = Soc_config.default) ?(model = "resnet50")
    ?(scale = 1) ?(mode = Runtime.Accel { im2col_on_accel = true })
    ?(backend = Gem_sw.Backend.Cycle) ?(simulate = true)
    ?(synth_host = Gemmini.Synthesis.Rocket) ?tlb_window ?serve () =
  {
    label;
    soc;
    model;
    scale;
    mode;
    backend;
    simulate;
    synth_host;
    tlb_window;
    serve;
  }

let with_accel accel t =
  let accel = Gemmini.Params.validate_exn accel in
  { t with soc = Soc_config.map_accel (fun _ -> accel) t.soc }

let with_backend backend t = { t with backend }
let with_serve spec t = { t with serve = Some spec }
let serve_or_default t = Option.value ~default:serve_default t.serve

(* --- canonical serialization ------------------------------------------------ *)

(* Every field that can influence a measurement is rendered, with its name,
   in a fixed order. [%h] keeps floats bit-exact. *)

let fl f = Printf.sprintf "%h" f

let params_fields (p : Gemmini.Params.t) =
  [
    ("mesh_rows", string_of_int p.mesh_rows);
    ("mesh_cols", string_of_int p.mesh_cols);
    ("tile_rows", string_of_int p.tile_rows);
    ("tile_cols", string_of_int p.tile_cols);
    ("dataflow", Gemmini.Dataflow.to_string p.dataflow);
    ("input_type", Gemmini.Dtype.to_string p.input_type);
    ("acc_type", Gemmini.Dtype.to_string p.acc_type);
    ("sp_capacity_bytes", string_of_int p.sp_capacity_bytes);
    ("sp_banks", string_of_int p.sp_banks);
    ("acc_capacity_bytes", string_of_int p.acc_capacity_bytes);
    ("acc_banks", string_of_int p.acc_banks);
    ("has_im2col", string_of_bool p.has_im2col);
    ("has_pooling", string_of_bool p.has_pooling);
    ("has_transposer", string_of_bool p.has_transposer);
    ("has_activations", string_of_bool p.has_activations);
    ("dma_bus_bytes", string_of_int p.dma_bus_bytes);
    ("max_in_flight", string_of_int p.max_in_flight);
    ("freq_ghz", fl p.freq_ghz);
  ]

let tlb_fields (c : Gem_vm.Hierarchy.config) =
  [
    ("private_entries", string_of_int c.private_entries);
    ("shared_entries", string_of_int c.shared_entries);
    ("filter_registers", string_of_bool c.filter_registers);
    ("private_hit_latency", string_of_int c.private_hit_latency);
    ("shared_hit_latency", string_of_int c.shared_hit_latency);
  ]

let cpu_name = function
  | Gem_cpu.Cpu_model.Rocket -> "rocket"
  | Gem_cpu.Cpu_model.Boom -> "boom"

let host_name = function
  | Gemmini.Synthesis.No_host -> "no_host"
  | Gemmini.Synthesis.Rocket -> "rocket"
  | Gemmini.Synthesis.Boom -> "boom"

let mode_fields = function
  | Runtime.Accel { im2col_on_accel } ->
      [ ("mode", "accel"); ("im2col_on_accel", string_of_bool im2col_on_accel) ]
  | Runtime.Cpu_only -> [ ("mode", "cpu_only") ]

let group buf name fields =
  Buffer.add_char buf '(';
  Buffer.add_string buf name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_char buf '(';
      Buffer.add_string buf k;
      Buffer.add_char buf ' ';
      Buffer.add_string buf v;
      Buffer.add_char buf ')')
    fields;
  Buffer.add_char buf ')'

let canonical t =
  let buf = Buffer.create 1024 in
  group buf "point"
    ([
       ("model", t.model);
       ("scale", string_of_int t.scale);
       ("backend", Gem_sw.Backend.kind_name t.backend);
       ("simulate", string_of_bool t.simulate);
       ("synth_host", host_name t.synth_host);
       ( "tlb_window",
         match t.tlb_window with None -> "none" | Some w -> fl w );
     ]
    @ mode_fields t.mode);
  let s = t.soc in
  group buf "soc"
    [
      ("l2_size_bytes", string_of_int s.Soc_config.l2_size_bytes);
      ("l2_ways", string_of_int s.Soc_config.l2_ways);
      ("l2_line_bytes", string_of_int s.Soc_config.l2_line_bytes);
      ("l2_hit_latency", string_of_int s.Soc_config.l2_hit_latency);
      ("l2_port_bytes", string_of_int s.Soc_config.l2_port_bytes);
      ("dram_latency", string_of_int s.Soc_config.dram_latency);
      ("dram_bytes_per_cycle", string_of_int s.Soc_config.dram_bytes_per_cycle);
      ("functional", string_of_bool s.Soc_config.functional);
    ];
  List.iter
    (fun (c : Soc_config.core_config) ->
      group buf "core" [ ("cpu", cpu_name c.cpu) ];
      group buf "tlb" (tlb_fields c.tlb);
      group buf "accel" (params_fields c.accel))
    s.Soc_config.cores;
  (* Appended only when present: pre-serving points keep their digests
     (and their cache entries) unchanged. *)
  Option.iter
    (fun sv ->
      group buf "serve"
        [
          ("arrival", sv.ss_arrival);
          ("batch", sv.ss_batch);
          ("slo_ms", fl sv.ss_slo_ms);
          ("duration_ms", fl sv.ss_duration_ms);
          ("seed", string_of_int sv.ss_seed);
        ])
    t.serve;
  Buffer.contents buf

let digest t = Digest.to_hex (Digest.string (canonical t))
