(* Bump whenever a behavioral change anywhere in the simulator or the
   synthesis model alters measured numbers; see README "Parallel sweeps &
   caching". *)
(* "2": backend seam — outcomes carry backend provenance and points hash
   the backend kind. *)
(* "3": serving — outcomes carry the serving measurement block (required
   in the JSON round-trip, so "2" entries would read as misses anyway). *)
let sim_version = "3"

type t = { root : string; version_dir : string }

let create ?(version = sim_version) ~dir () =
  { root = dir; version_dir = Filename.concat dir ("v" ^ version) }

let dir t = t.root

let path_of t point =
  Filename.concat t.version_dir (Point.digest point ^ ".json")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find t point =
  let path = path_of t point in
  if not (Sys.file_exists path) then None
  else
    match Gem_util.Jsonx.of_string (read_file path) with
    | exception Sys_error _ -> None
    | Error _ -> None
    | Ok json -> (
        match Outcome.of_json json with Ok o -> Some o | Error _ -> None)

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.file_exists path ->
      (* lost a mkdir race to a concurrent worker: fine *)
      ()
  end

let store t point outcome =
  mkdir_p t.version_dir;
  let path = path_of t point in
  (* Same-directory temp + atomic rename: a crash mid-write leaves a
     stray temp, never a truncated entry under the real name (a reader
     that does hit garbage treats it as a miss — see [find]). The pid
     keeps concurrent *processes* apart, the domain id concurrent
     workers within one process. *)
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Gem_util.Jsonx.to_string (Outcome.to_json outcome)));
  Sys.rename tmp path
