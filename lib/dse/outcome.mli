(** The typed measurement record one {!Point} evaluates to.

    Every field a sweep-shaped experiment reads lives here, so a cached
    outcome can regenerate the experiment's output bit-for-bit without
    re-simulating. The JSON round-trip is exact: floats are emitted with
    enough digits to reconstruct the same double. *)

type t = {
  backend : string;
      (** provenance: which execution backend produced the timing numbers
          (["cycle"] or ["analytic"]; [""] only in {!empty}). Mandatory in
          the JSON round-trip so pre-seam cache entries read as misses. *)
  (* Timing simulation (zeroed when the point is synthesis-only). *)
  total_cycles : int;  (** max over cores *)
  per_core_cycles : int array;
  class_cycles : (string * int) list;
      (** per layer-class wall cycles, summed over cores, in fixed class
          order (conv, depthwise, matmul, resadd, pool, elementwise) *)
  (* Analytic synthesis estimate (always computed). *)
  fmax_ghz : float;
  total_area_um2 : float;
  array_area_um2 : float;
  power_mw : float;
  (* Core-0 TLB-hierarchy statistics. *)
  tlb_requests : int;
  tlb_walks : int;
  tlb_shared_hits : int;
  tlb_hit_rate : float;  (** effective (filters + private + shared) *)
  tlb_same_page_reads : float;
  tlb_same_page_writes : float;
  tlb_windows : (float * float) array;
      (** (window start, private-miss rate) series; empty unless the point
          set [tlb_window] *)
  (* Shared memory system. *)
  l2_miss_rate : float;
  (* Per-component observability summary, in engine registration order
     (component names are core-prefixed, e.g. "core0/mesh"). *)
  comp_util : (string * float) list;  (** busy / horizon, 0..1 *)
  comp_wait : (string * int) list;  (** total stall (wait) cycles *)
  comp_p95_lat : (string * float) list;
      (** p95 queue latency in cycles (request to service start) *)
  (* Serving scenario measurements (zeroed unless the point carried a
     {!Point.serve_spec}). *)
  serve_offered : int;  (** requests in the arrival stream *)
  serve_completed : int;
  serve_p50_ms : float;  (** end-to-end latency percentiles *)
  serve_p95_ms : float;
  serve_p99_ms : float;
  serve_max_ms : float;
  serve_throughput_rps : float;
  serve_slo_attainment : float;
      (** fraction of offered requests inside the spec's SLO *)
}

val empty : t
(** All-zero record; the synthesis-only evaluator fills in its fields. *)

val to_json : t -> Gem_util.Jsonx.t

val of_json : Gem_util.Jsonx.t -> (t, string) result
(** Total: rejects missing fields rather than defaulting them, so a cache
    file from an older schema reads as a miss, not as a wrong result. *)

val class_cycles_of : t -> Gem_dnn.Layer.klass -> int
(** Lookup by layer class; 0 when the class did not occur. *)

val util_of : t -> string -> float
(** First component whose name ends with the suffix ("mesh" matches
    "core0/mesh"); 0 when absent. Same convention for the two below. *)

val wait_of : t -> string -> int
val p95_lat_of : t -> string -> float
