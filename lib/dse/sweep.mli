(** Sweep specifications: named axes over a base point.

    An axis is an ordered list of labeled point transformers; a sweep is
    either an explicit point list or the cartesian product of axes applied
    to a base point, first axis outermost (slowest-varying) — the same
    nesting order as the hand-written [List.concat_map] loops the
    experiments used before. *)

type axis = {
  axis_name : string;
  axis_values : (string * (Point.t -> Point.t)) list;
      (** (value label, transformer) in sweep order *)
}

val axis : string -> (string * (Point.t -> Point.t)) list -> axis

val ints : string -> (int -> Point.t -> Point.t) -> int list -> axis
(** Convenience: integer-valued axis labeled with the integers. *)

val backends : ?kinds:Gem_sw.Backend.kind list -> unit -> axis
(** Execution-backend axis (default: every registered backend). Each
    value re-prices the same design points with a different backend;
    cache entries stay distinct because the backend is part of the point
    hash. *)

val cores : int list -> axis
(** SoC-size axis: replicates the base point's first core config [n]
    times on the same shared memory system, so the serving sweeps span
    single- to many-core chips. *)

val serve_rates : float list -> axis
(** Serving arrival-rate axis (Poisson, requests/second): installs
    [poisson:R] into the point's serving spec (starting from
    {!Point.serve_or_default}), labeled ["%g"]. The throughput-vs-latency
    curve axis. *)

val serve_batches : string list -> axis
(** Serving batching-policy axis over
    {!Gem_serve.Batch.policy_of_string} strings (["none"], ["fixed:4"],
    ["deadline:8:500"], ...). *)

val cartesian : ?sep:string -> base:Point.t -> axis list -> Point.t array
(** Product of all axes over [base]; each point's label is the value
    labels joined by [sep] (default ["/"]), appended to the base label
    when non-empty. *)

val points : Point.t list -> Point.t array
(** An explicit point list as a sweep. *)
