module J = Gem_util.Jsonx

type t = {
  backend : string;
  total_cycles : int;
  per_core_cycles : int array;
  class_cycles : (string * int) list;
  fmax_ghz : float;
  total_area_um2 : float;
  array_area_um2 : float;
  power_mw : float;
  tlb_requests : int;
  tlb_walks : int;
  tlb_shared_hits : int;
  tlb_hit_rate : float;
  tlb_same_page_reads : float;
  tlb_same_page_writes : float;
  tlb_windows : (float * float) array;
  l2_miss_rate : float;
  (* Per-component observability summary (engine registration order). *)
  comp_util : (string * float) list;
  comp_wait : (string * int) list;
  comp_p95_lat : (string * float) list;
  (* Serving scenario (zeroed unless the point carried a serve spec). *)
  serve_offered : int;
  serve_completed : int;
  serve_p50_ms : float;
  serve_p95_ms : float;
  serve_p99_ms : float;
  serve_max_ms : float;
  serve_throughput_rps : float;
  serve_slo_attainment : float;
}

let empty =
  {
    backend = "";
    total_cycles = 0;
    per_core_cycles = [||];
    class_cycles = [];
    fmax_ghz = 0.;
    total_area_um2 = 0.;
    array_area_um2 = 0.;
    power_mw = 0.;
    tlb_requests = 0;
    tlb_walks = 0;
    tlb_shared_hits = 0;
    tlb_hit_rate = 0.;
    tlb_same_page_reads = 0.;
    tlb_same_page_writes = 0.;
    tlb_windows = [||];
    l2_miss_rate = 0.;
    comp_util = [];
    comp_wait = [];
    comp_p95_lat = [];
    serve_offered = 0;
    serve_completed = 0;
    serve_p50_ms = 0.;
    serve_p95_ms = 0.;
    serve_p99_ms = 0.;
    serve_max_ms = 0.;
    serve_throughput_rps = 0.;
    serve_slo_attainment = 0.;
  }

let to_json t =
  J.Obj
    [
      ("backend", J.String t.backend);
      ("total_cycles", J.Int t.total_cycles);
      ( "per_core_cycles",
        J.List (Array.to_list (Array.map (fun c -> J.Int c) t.per_core_cycles))
      );
      ( "class_cycles",
        J.Obj (List.map (fun (k, c) -> (k, J.Int c)) t.class_cycles) );
      ("fmax_ghz", J.Float t.fmax_ghz);
      ("total_area_um2", J.Float t.total_area_um2);
      ("array_area_um2", J.Float t.array_area_um2);
      ("power_mw", J.Float t.power_mw);
      ("tlb_requests", J.Int t.tlb_requests);
      ("tlb_walks", J.Int t.tlb_walks);
      ("tlb_shared_hits", J.Int t.tlb_shared_hits);
      ("tlb_hit_rate", J.Float t.tlb_hit_rate);
      ("tlb_same_page_reads", J.Float t.tlb_same_page_reads);
      ("tlb_same_page_writes", J.Float t.tlb_same_page_writes);
      ( "tlb_windows",
        J.List
          (Array.to_list
             (Array.map
                (fun (time, rate) -> J.List [ J.Float time; J.Float rate ])
                t.tlb_windows)) );
      ("l2_miss_rate", J.Float t.l2_miss_rate);
      ( "comp_util",
        J.Obj (List.map (fun (k, v) -> (k, J.Float v)) t.comp_util) );
      ("comp_wait", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) t.comp_wait));
      ( "comp_p95_lat",
        J.Obj (List.map (fun (k, v) -> (k, J.Float v)) t.comp_p95_lat) );
      ("serve_offered", J.Int t.serve_offered);
      ("serve_completed", J.Int t.serve_completed);
      ("serve_p50_ms", J.Float t.serve_p50_ms);
      ("serve_p95_ms", J.Float t.serve_p95_ms);
      ("serve_p99_ms", J.Float t.serve_p99_ms);
      ("serve_max_ms", J.Float t.serve_max_ms);
      ("serve_throughput_rps", J.Float t.serve_throughput_rps);
      ("serve_slo_attainment", J.Float t.serve_slo_attainment);
    ]

let of_json json =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (J.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "outcome: bad or missing field %S" name)
  in
  (* Provenance is mandatory: entries written before the backend seam
     existed must read as cache misses, not as cycle-accurate results. *)
  let* backend = field "backend" J.to_str in
  let* total_cycles = field "total_cycles" J.to_int in
  let* per_core =
    let* l = field "per_core_cycles" J.to_list in
    let ints = List.filter_map J.to_int l in
    if List.length ints = List.length l then Ok (Array.of_list ints)
    else Error "outcome: non-int per_core_cycles"
  in
  let* class_cycles =
    let* o = field "class_cycles" J.to_obj in
    let pairs = List.filter_map (fun (k, v) -> Option.map (fun c -> (k, c)) (J.to_int v)) o in
    if List.length pairs = List.length o then Ok pairs
    else Error "outcome: non-int class_cycles"
  in
  let* fmax_ghz = field "fmax_ghz" J.to_float in
  let* total_area_um2 = field "total_area_um2" J.to_float in
  let* array_area_um2 = field "array_area_um2" J.to_float in
  let* power_mw = field "power_mw" J.to_float in
  let* tlb_requests = field "tlb_requests" J.to_int in
  let* tlb_walks = field "tlb_walks" J.to_int in
  let* tlb_shared_hits = field "tlb_shared_hits" J.to_int in
  let* tlb_hit_rate = field "tlb_hit_rate" J.to_float in
  let* tlb_same_page_reads = field "tlb_same_page_reads" J.to_float in
  let* tlb_same_page_writes = field "tlb_same_page_writes" J.to_float in
  let* tlb_windows =
    let* l = field "tlb_windows" J.to_list in
    let pairs =
      List.filter_map
        (function
          | J.List [ time; rate ] ->
              (match (J.to_float time, J.to_float rate) with
              | Some t, Some r -> Some (t, r)
              | _ -> None)
          | _ -> None)
        l
    in
    if List.length pairs = List.length l then Ok (Array.of_list pairs)
    else Error "outcome: malformed tlb_windows"
  in
  let* l2_miss_rate = field "l2_miss_rate" J.to_float in
  let assoc name conv kind =
    let* o = field name J.to_obj in
    let pairs =
      List.filter_map (fun (k, v) -> Option.map (fun x -> (k, x)) (conv v)) o
    in
    if List.length pairs = List.length o then Ok pairs
    else Error (Printf.sprintf "outcome: non-%s %s" kind name)
  in
  let* comp_util = assoc "comp_util" J.to_float "float" in
  let* comp_wait = assoc "comp_wait" J.to_int "int" in
  let* comp_p95_lat = assoc "comp_p95_lat" J.to_float "float" in
  (* Required like every other field: pre-serving cache entries must read
     as misses now that serving points share the cache namespace. *)
  let* serve_offered = field "serve_offered" J.to_int in
  let* serve_completed = field "serve_completed" J.to_int in
  let* serve_p50_ms = field "serve_p50_ms" J.to_float in
  let* serve_p95_ms = field "serve_p95_ms" J.to_float in
  let* serve_p99_ms = field "serve_p99_ms" J.to_float in
  let* serve_max_ms = field "serve_max_ms" J.to_float in
  let* serve_throughput_rps = field "serve_throughput_rps" J.to_float in
  let* serve_slo_attainment = field "serve_slo_attainment" J.to_float in
  Ok
    {
      backend;
      total_cycles;
      per_core_cycles = per_core;
      class_cycles;
      fmax_ghz;
      total_area_um2;
      array_area_um2;
      power_mw;
      tlb_requests;
      tlb_walks;
      tlb_shared_hits;
      tlb_hit_rate;
      tlb_same_page_reads;
      tlb_same_page_writes;
      tlb_windows;
      l2_miss_rate;
      comp_util;
      comp_wait;
      comp_p95_lat;
      serve_offered;
      serve_completed;
      serve_p50_ms;
      serve_p95_ms;
      serve_p99_ms;
      serve_max_ms;
      serve_throughput_rps;
      serve_slo_attainment;
    }

let class_cycles_of t klass =
  Option.value ~default:0
    (List.assoc_opt (Gem_dnn.Layer.class_name klass) t.class_cycles)

(* Components are core-prefixed ("core0/mesh"); experiments usually want
   "the mesh" regardless of core, so look up by suffix. *)
let by_suffix pairs suffix =
  List.find_map
    (fun (name, v) ->
      if String.ends_with ~suffix name then Some v else None)
    pairs

let util_of t suffix = Option.value ~default:0. (by_suffix t.comp_util suffix)
let wait_of t suffix = Option.value ~default:0 (by_suffix t.comp_wait suffix)

let p95_lat_of t suffix =
  Option.value ~default:0. (by_suffix t.comp_p95_lat suffix)
