(** The sweep executor: evaluates design points, fanning out over a
    [Domain]-based worker pool and memoizing through the persistent
    {!Cache}.

    Determinism contract: {!run} returns results in point-index order, not
    completion order, and each worker builds its own [Soc] — no simulator
    state is shared across points — so [~jobs:n] for any [n] produces
    results structurally equal to a serial run, and a warm-cache run
    reproduces a cold run bit-for-bit. *)

type run_result = {
  results : (Point.t * Outcome.t) array;  (** in input order *)
  simulated : int;  (** points evaluated this run *)
  cached : int;  (** points served from the cache *)
}

val evaluate : Point.t -> Outcome.t
(** Evaluate one point, bypassing pool and cache: always computes the
    synthesis estimate; when the point's [simulate] is set, builds a fresh
    SoC, runs one inference per core ([Runtime.run_parallel] when the SoC
    has several), and collects TLB/L2 statistics from core 0.

    Raises [Invalid_argument] on an unknown model name and lets simulator
    exceptions (e.g. {!Gem_sim.Fault.Trap}) propagate. *)

val default_jobs : unit -> int
(** [GEMMINI_DSE_JOBS] when set ([0] means the domain count recommended
    for this machine), else 1 — serial, so clean runs stay byte-identical
    with no environment configured. *)

val default_cache : unit -> Cache.t option
(** A cache at [GEMMINI_DSE_CACHE] when that variable is set, else none. *)

val run :
  ?jobs:int -> ?cache:Cache.t option -> Point.t array -> run_result
(** [jobs] defaults to {!default_jobs}; [cache] to {!default_cache}.
    [jobs = 0] means [Domain.recommended_domain_count ()]. A worker
    exception is re-raised (lowest point index wins) after the pool
    drains. *)
