(** The sweep executor: evaluates design points, fanning out over a
    [Domain]-based worker pool and memoizing through the persistent
    {!Cache}.

    Determinism contract: {!run} returns results in point-index order, not
    completion order, and each worker builds its own [Soc] — no simulator
    state is shared across points — so [~jobs:n] for any [n] produces
    results structurally equal to a serial run, and a warm-cache run
    reproduces a cold run bit-for-bit. *)

(** A point the executor gave up on after its retry budget. *)
type failure = {
  f_point : Point.t;
  f_index : int;  (** index in the input array *)
  f_attempts : int;  (** evaluations attempted (1 + retries) *)
  f_reason : string;  (** last exception text or deadline report *)
}

type run_result = {
  results : (Point.t * Outcome.t) array;
      (** in input order; quarantined points are absent (they are
          reported in [quarantined], never silently dropped) *)
  simulated : int;  (** points evaluated this run *)
  cached : int;  (** points served from the cache *)
  salvaged : int;  (** points served from a resumed journal *)
  quarantined : failure list;  (** points that exhausted their retries *)
}

val evaluate : Point.t -> Outcome.t
(** Evaluate one point, bypassing pool and cache: always computes the
    synthesis estimate; when the point's [simulate] is set, builds a fresh
    SoC, runs one inference per core ([Runtime.run_parallel] when the SoC
    has several), and collects TLB/L2 statistics from core 0.

    Raises [Invalid_argument] on an unknown model name and lets simulator
    exceptions (e.g. {!Gem_sim.Fault.Trap}) propagate. *)

val default_jobs : unit -> int
(** [GEMMINI_DSE_JOBS] when set ([0] means the domain count recommended
    for this machine), else 1 — serial, so clean runs stay byte-identical
    with no environment configured. *)

val default_cache : unit -> Cache.t option
(** A cache at [GEMMINI_DSE_CACHE] when that variable is set, else none. *)

val run :
  ?jobs:int ->
  ?cache:Cache.t option ->
  ?retries:int ->
  ?backoff_ms:int ->
  ?deadline:float ->
  ?journal:string ->
  ?resume:bool ->
  Point.t array ->
  run_result
(** [jobs] defaults to {!default_jobs}; [cache] to {!default_cache}.
    [jobs = 0] means [Domain.recommended_domain_count ()].

    Failure handling: with the defaults ([retries = 0], no [deadline]) a
    worker exception is re-raised (lowest point index wins) after the
    pool drains — the historical contract. Setting [retries > 0] or a
    [deadline] switches to quarantine semantics: a failing or
    over-deadline evaluation is retried up to [retries] times with
    exponential backoff (first wait [backoff_ms], default 100, doubling
    per attempt), then the point lands in [quarantined] instead of
    raising. [deadline] is wall-clock seconds per evaluation, enforced
    post-hoc — domains cannot be killed mid-simulation, so an
    over-budget result is discarded and the point retried/quarantined.

    Crash safety: [journal] names a file atomically rewritten after
    every completed point (digest-keyed outcomes). [resume] salvages a
    journal left by a killed sweep — salvaged points are not
    re-evaluated and are tallied in [salvaged]; a truncated journal
    salvages nothing and the sweep simply re-simulates. The journal
    records real outcomes only, so a resumed sweep's report is
    byte-identical to an uninterrupted run's. *)

val register_metrics : Gem_obs.Metrics.t -> run_result -> unit
(** Registers the sweep tallies ([dse.points], [dse.evaluated],
    [dse.simulated], [dse.cached], [dse.salvaged], [dse.quarantined],
    [dse.failed_attempts]) as constant samples. Call after {!run}
    returns — every value is settled, no worker is still writing. *)
