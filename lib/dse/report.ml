module J = Gem_util.Jsonx

let fps_1ghz (o : Outcome.t) =
  if o.Outcome.total_cycles = 0 then 0.
  else Gem_sim.Time.fps ~freq_ghz:1.0 ~cycles_per_item:o.Outcome.total_cycles

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\""
    ^ String.concat "\"\"" (String.split_on_char '"' s)
    ^ "\""
  else s

let csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "label,model,scale,total_cycles,fps_1ghz,fmax_ghz,area_mm2,power_mw,tlb_hit_rate,l2_miss_rate,mesh_util_pct,dma_util_pct,dma_wait_cycles,ld_wait_cycles,dma_p95_lat,serve_offered,serve_completed,serve_throughput_rps,serve_p50_ms,serve_p95_ms,serve_p99_ms,serve_slo_attainment\n";
  Array.iter
    (fun ((p : Point.t), (o : Outcome.t)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s,%s,%d,%d,%.3f,%.3f,%.3f,%.1f,%.4f,%.4f,%.2f,%.2f,%d,%d,%.1f,%d,%d,%.1f,%.3f,%.3f,%.3f,%.4f\n"
           (csv_field p.Point.label) (csv_field p.Point.model) p.Point.scale
           o.Outcome.total_cycles (fps_1ghz o) o.Outcome.fmax_ghz
           (o.Outcome.total_area_um2 /. 1e6)
           o.Outcome.power_mw o.Outcome.tlb_hit_rate o.Outcome.l2_miss_rate
           (100. *. Outcome.util_of o "mesh")
           (100. *. Outcome.util_of o "dma")
           (Outcome.wait_of o "dma") (Outcome.wait_of o "/ld")
           (Outcome.p95_lat_of o "dma") o.Outcome.serve_offered
           o.Outcome.serve_completed o.Outcome.serve_throughput_rps
           o.Outcome.serve_p50_ms o.Outcome.serve_p95_ms
           o.Outcome.serve_p99_ms o.Outcome.serve_slo_attainment))
    rows;
  Buffer.contents buf

let json rows =
  J.List
    (Array.to_list
       (Array.map
          (fun ((p : Point.t), o) ->
            J.Obj
              [
                ("label", J.String p.Point.label);
                ("model", J.String p.Point.model);
                ("scale", J.Int p.Point.scale);
                ("digest", J.String (Point.digest p));
                ("outcome", Outcome.to_json o);
              ])
          rows))

let json_string rows = J.to_string ~pretty:true (json rows) ^ "\n"
