type axis = {
  axis_name : string;
  axis_values : (string * (Point.t -> Point.t)) list;
}

let axis axis_name axis_values = { axis_name; axis_values }

let ints axis_name apply values =
  {
    axis_name;
    axis_values = List.map (fun v -> (string_of_int v, apply v)) values;
  }

let backends ?(kinds = Gem_sw.Backend.all_kinds) () =
  {
    axis_name = "backend";
    axis_values =
      List.map
        (fun k -> (Gem_sw.Backend.kind_name k, Point.with_backend k))
        kinds;
  }

let cartesian ?(sep = "/") ~base axes =
  let rec expand labels point = function
    | [] ->
        let label =
          let value_part = String.concat sep (List.rev labels) in
          if point.Point.label = "" then value_part
          else if value_part = "" then point.Point.label
          else point.Point.label ^ sep ^ value_part
        in
        [ { point with Point.label } ]
    | ax :: rest ->
        List.concat_map
          (fun (vl, f) -> expand (vl :: labels) (f point) rest)
          ax.axis_values
  in
  Array.of_list (expand [] base axes)

let points l = Array.of_list l
