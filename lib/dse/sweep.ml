type axis = {
  axis_name : string;
  axis_values : (string * (Point.t -> Point.t)) list;
}

let axis axis_name axis_values = { axis_name; axis_values }

let ints axis_name apply values =
  {
    axis_name;
    axis_values = List.map (fun v -> (string_of_int v, apply v)) values;
  }

let backends ?(kinds = Gem_sw.Backend.all_kinds) () =
  {
    axis_name = "backend";
    axis_values =
      List.map
        (fun k -> (Gem_sw.Backend.kind_name k, Point.with_backend k))
        kinds;
  }

let cores counts =
  {
    axis_name = "cores";
    axis_values =
      List.map
        (fun n ->
          ( string_of_int n,
            fun (p : Point.t) ->
              match p.Point.soc.Gem_soc.Soc_config.cores with
              | [] -> invalid_arg "Gem_dse.Sweep.cores: SoC has no cores"
              | proto :: _ ->
                  {
                    p with
                    Point.soc =
                      Gem_soc.Soc_config.with_cores
                        (List.init n (fun _ -> proto))
                        p.Point.soc;
                  } ))
        counts;
  }

let serve_rates rates =
  {
    axis_name = "arrival_rps";
    axis_values =
      List.map
        (fun r ->
          ( Printf.sprintf "%g" r,
            fun p ->
              Point.with_serve
                {
                  (Point.serve_or_default p) with
                  Point.ss_arrival = Printf.sprintf "poisson:%g" r;
                }
                p ))
        rates;
  }

let serve_batches policies =
  {
    axis_name = "batch";
    axis_values =
      List.map
        (fun b ->
          ( b,
            fun p ->
              Point.with_serve
                { (Point.serve_or_default p) with Point.ss_batch = b }
                p ))
        policies;
  }

let cartesian ?(sep = "/") ~base axes =
  let rec expand labels point = function
    | [] ->
        let label =
          let value_part = String.concat sep (List.rev labels) in
          if point.Point.label = "" then value_part
          else if value_part = "" then point.Point.label
          else point.Point.label ^ sep ^ value_part
        in
        [ { point with Point.label } ]
    | ax :: rest ->
        List.concat_map
          (fun (vl, f) -> expand (vl :: labels) (f point) rest)
          ax.axis_values
  in
  Array.of_list (expand [] base axes)

let points l = Array.of_list l
