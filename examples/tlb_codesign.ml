(* Virtual-address-translation co-design (paper Section V-A): iterate over
   TLB hierarchies for an edge-class accelerator and find the cheapest
   configuration within a target of the best performance — ending at the
   paper's recommendation: a tiny private TLB plus two filter registers.
   The 18-point grid is evaluated through the [Gem_dse] sweep engine
   (parallel and cacheable via GEMMINI_DSE_JOBS / GEMMINI_DSE_CACHE).

     dune exec examples/tlb_codesign.exe *)

open Gem_util
module H = Gem_vm.Hierarchy
module Soc_config = Gem_soc.Soc_config

let scale =
  match
    Option.bind (Sys.getenv_opt "GEMMINI_EXAMPLE_SCALE") int_of_string_opt
  with
  | Some n when n >= 1 -> n
  | _ -> 2

(* Cost model for the translation hardware: entries are CAM entries. *)
let tlb_cost_entries (c : H.config) =
  c.H.private_entries + (c.H.shared_entries / 8)
  + if c.H.filter_registers then 1 else 0

let () =
  let candidates =
    List.concat_map
      (fun filters ->
        List.concat_map
          (fun priv ->
            List.map
              (fun shared ->
                {
                  H.private_entries = priv;
                  shared_entries = shared;
                  filter_registers = filters;
                  private_hit_latency = 2;
                  shared_hit_latency = 8;
                })
              [ 0; 128; 512 ])
          [ 4; 16; 64 ])
      [ false; true ]
  in
  let sweep =
    Gem_dse.Sweep.points
      (List.map
         (fun tlb ->
           Gem_dse.Point.make ~scale
             ~soc:
               {
                 Soc_config.default with
                 cores = [ { Soc_config.default_core with tlb } ];
               }
             ())
         candidates)
  in
  let rr = Gem_dse.Exec.run sweep in
  let results =
    List.map2
      (fun c (_, (o : Gem_dse.Outcome.t)) ->
        (c, (o.Gem_dse.Outcome.total_cycles, o.Gem_dse.Outcome.tlb_hit_rate)))
      candidates
      (Array.to_list rr.Gem_dse.Exec.results)
  in
  let best = List.fold_left (fun acc (_, (cyc, _)) -> min acc cyc) max_int results in
  let t =
    Table.create ~title:"TLB hierarchy design space (smaller cost is cheaper)"
      [ "Private"; "Shared"; "Filters"; "Cost (entries)"; "Cycles"; "vs best"; "Eff. hit" ]
  in
  List.iter (fun i -> Table.set_align t i Table.Right) [ 0; 1; 3; 4; 5; 6 ];
  List.iter
    (fun (c, (cycles, hit)) ->
      Table.add_row t
        [
          string_of_int c.H.private_entries;
          string_of_int c.H.shared_entries;
          (if c.H.filter_registers then "yes" else "no");
          string_of_int (tlb_cost_entries c);
          Table.fmt_int cycles;
          Table.fmt_pct (100. *. (float_of_int cycles /. float_of_int best -. 1.));
          Table.fmt_pct (100. *. hit);
        ])
    results;
  Table.print t;
  (* The co-design query: cheapest config within 3% of the best. *)
  let within =
    List.filter
      (fun (_, (cyc, _)) -> float_of_int cyc <= 1.03 *. float_of_int best)
      results
  in
  let cheapest =
    List.fold_left
      (fun acc (c, _) ->
        match acc with
        | None -> Some c
        | Some best_c ->
            if tlb_cost_entries c < tlb_cost_entries best_c then Some c else Some best_c)
      None within
  in
  match cheapest with
  | Some c ->
      Printf.printf
        "\nCheapest configuration within 3%% of best: private=%d shared=%d filters=%b\n\
         (paper's recommendation: 4-entry private TLB + filter registers, no shared TLB)\n"
        c.H.private_entries c.H.shared_entries c.H.filter_registers
  | None -> print_endline "no configuration within 3% of best?!"
