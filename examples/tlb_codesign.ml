(* Virtual-address-translation co-design (paper Section V-A): iterate over
   TLB hierarchies for an edge-class accelerator and find the cheapest
   configuration within a target of the best performance — ending at the
   paper's recommendation: a tiny private TLB plus two filter registers.

     dune exec examples/tlb_codesign.exe *)

open Gem_util
module H = Gem_vm.Hierarchy
module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config
module Runtime = Gem_sw.Runtime

let model = Gem_dnn.Model_zoo.(scale_model ~factor:2 resnet50)

(* Cost model for the translation hardware: entries are CAM entries. *)
let tlb_cost_entries (c : H.config) =
  c.H.private_entries + (c.H.shared_entries / 8)
  + if c.H.filter_registers then 1 else 0

let evaluate tlb =
  let soc =
    Soc.create
      { Soc_config.default with cores = [ { Soc_config.default_core with tlb } ] }
  in
  let r = Runtime.run soc ~core:0 model ~mode:(Runtime.Accel { im2col_on_accel = true }) in
  let h = Soc.tlb (Soc.core soc 0) in
  (r.Runtime.r_total_cycles, H.effective_hit_rate h)

let () =
  let candidates =
    List.concat_map
      (fun filters ->
        List.concat_map
          (fun priv ->
            List.map
              (fun shared ->
                {
                  H.private_entries = priv;
                  shared_entries = shared;
                  filter_registers = filters;
                  private_hit_latency = 2;
                  shared_hit_latency = 8;
                })
              [ 0; 128; 512 ])
          [ 4; 16; 64 ])
      [ false; true ]
  in
  let results = List.map (fun c -> (c, evaluate c)) candidates in
  let best = List.fold_left (fun acc (_, (cyc, _)) -> min acc cyc) max_int results in
  let t =
    Table.create ~title:"TLB hierarchy design space (smaller cost is cheaper)"
      [ "Private"; "Shared"; "Filters"; "Cost (entries)"; "Cycles"; "vs best"; "Eff. hit" ]
  in
  List.iter (fun i -> Table.set_align t i Table.Right) [ 0; 1; 3; 4; 5; 6 ];
  List.iter
    (fun (c, (cycles, hit)) ->
      Table.add_row t
        [
          string_of_int c.H.private_entries;
          string_of_int c.H.shared_entries;
          (if c.H.filter_registers then "yes" else "no");
          string_of_int (tlb_cost_entries c);
          Table.fmt_int cycles;
          Table.fmt_pct (100. *. (float_of_int cycles /. float_of_int best -. 1.));
          Table.fmt_pct (100. *. hit);
        ])
    results;
  Table.print t;
  (* The co-design query: cheapest config within 3% of the best. *)
  let within =
    List.filter
      (fun (_, (cyc, _)) -> float_of_int cyc <= 1.03 *. float_of_int best)
      results
  in
  let cheapest =
    List.fold_left
      (fun acc (c, _) ->
        match acc with
        | None -> Some c
        | Some best_c ->
            if tlb_cost_entries c < tlb_cost_entries best_c then Some c else Some best_c)
      None within
  in
  match cheapest with
  | Some c ->
      Printf.printf
        "\nCheapest configuration within 3%% of best: private=%d shared=%d filters=%b\n\
         (paper's recommendation: 4-entry private TLB + filter registers, no shared TLB)\n"
        c.H.private_entries c.H.shared_entries c.H.filter_registers
  | None -> print_endline "no configuration within 3% of best?!"
