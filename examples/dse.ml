(* Design-space exploration: sweep the generator's spatial-array sizes and
   tile factorizations, reporting performance (ResNet50 FPS), area, power
   and efficiency — the "footprint vs scalability trade-offs" exploration
   of paper Section III-A, driven end-to-end.

     dune exec examples/dse.exe *)

open Gem_util
module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config
module Runtime = Gem_sw.Runtime

(* Keep runtimes reasonable: a channel-scaled ResNet50. *)
let model = Gem_dnn.Model_zoo.(scale_model ~factor:2 resnet50)

let evaluate params =
  let report = Gemmini.Synthesis.estimate ~host:Gemmini.Synthesis.Rocket params in
  let soc =
    Soc.create
      {
        Soc_config.default with
        cores = [ { Soc_config.default_core with accel = params } ];
      }
  in
  let r = Runtime.run soc ~core:0 model ~mode:(Runtime.Accel { im2col_on_accel = true }) in
  (* The instance runs at its own fmax, not a fixed 1 GHz. *)
  let freq = min 1.5 report.Gemmini.Synthesis.fmax_ghz in
  let fps =
    Gem_sim.Time.fps ~freq_ghz:freq ~cycles_per_item:r.Runtime.r_total_cycles
  in
  (report, fps, freq)

let () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Design-space exploration (%s inference)" model.Gem_dnn.Layer.model_name)
      [ "Instance"; "fmax"; "clock"; "FPS"; "Area (mm^2)"; "Power (mW)"; "FPS/W" ]
  in
  List.iter (fun i -> Table.set_align t i Table.Right) [ 1; 2; 3; 4; 5; 6 ];
  let points =
    [
      ("8x8 edge", Gemmini.Params.edge);
      ("16x16 default", Gemmini.Params.default);
      ("16x16 combinational", Gemmini.Params.nvdla_like ~pes:256);
      ( "16x16 4x4-tiles",
        Gemmini.Params.validate_exn
          { Gemmini.Params.default with mesh_rows = 4; mesh_cols = 4; tile_rows = 4; tile_cols = 4 } );
      ("32x32 cloud", Gemmini.Params.cloud);
    ]
  in
  List.iter
    (fun (name, params) ->
      let report, fps, freq = evaluate params in
      Table.add_row t
        [
          name;
          Printf.sprintf "%.2f GHz" report.Gemmini.Synthesis.fmax_ghz;
          Printf.sprintf "%.2f GHz" freq;
          Table.fmt_f ~dec:1 fps;
          Table.fmt_f ~dec:2 (report.Gemmini.Synthesis.total_area_um2 /. 1e6);
          Table.fmt_f ~dec:0 report.Gemmini.Synthesis.power_mw;
          Table.fmt_f ~dec:1 (fps /. (report.Gemmini.Synthesis.power_mw /. 1000.));
        ])
    points;
  Table.print t;
  print_endline
    "\nNote how the fully-combinational point trades clock rate for area/power,\n\
     and how the two-level template exposes the intermediate factorizations\n\
     (paper Fig. 3)."
