(* Design-space exploration: sweep the generator's spatial-array sizes and
   tile factorizations, reporting performance (ResNet50 FPS), area, power
   and efficiency — the "footprint vs scalability trade-offs" exploration
   of paper Section III-A, driven end-to-end through the parallel
   [Gem_dse] sweep engine.

     dune exec examples/dse.exe

   GEMMINI_EXAMPLE_SCALE shrinks the model for CI smoke runs;
   GEMMINI_DSE_JOBS / GEMMINI_DSE_CACHE fan the sweep out over worker
   domains and memoize results (see README "Parallel sweeps & caching"). *)

open Gem_util

(* Keep runtimes reasonable: a channel-scaled ResNet50. *)
let scale =
  match
    Option.bind (Sys.getenv_opt "GEMMINI_EXAMPLE_SCALE") int_of_string_opt
  with
  | Some n when n >= 1 -> n
  | _ -> 2

let () =
  let model_name =
    if scale = 1 then "resnet50" else Printf.sprintf "resnet50/%d" scale
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Design-space exploration (%s inference)" model_name)
      [ "Instance"; "fmax"; "clock"; "FPS"; "Area (mm^2)"; "Power (mW)"; "FPS/W" ]
  in
  List.iter (fun i -> Table.set_align t i Table.Right) [ 1; 2; 3; 4; 5; 6 ];
  let instances =
    [
      ("8x8 edge", Gemmini.Params.edge);
      ("16x16 default", Gemmini.Params.default);
      ("16x16 combinational", Gemmini.Params.nvdla_like ~pes:256);
      ( "16x16 4x4-tiles",
        Gemmini.Params.validate_exn
          { Gemmini.Params.default with mesh_rows = 4; mesh_cols = 4; tile_rows = 4; tile_cols = 4 } );
      ("32x32 cloud", Gemmini.Params.cloud);
    ]
  in
  let sweep =
    Gem_dse.Sweep.points
      (List.map
         (fun (label, params) ->
           Gem_dse.Point.with_accel params
             (Gem_dse.Point.make ~label ~scale ()))
         instances)
  in
  let rr = Gem_dse.Exec.run sweep in
  Array.iter
    (fun ((p : Gem_dse.Point.t), (o : Gem_dse.Outcome.t)) ->
      (* The instance runs at its own fmax, not a fixed 1 GHz. *)
      let freq = min 1.5 o.Gem_dse.Outcome.fmax_ghz in
      let fps =
        Gem_sim.Time.fps ~freq_ghz:freq
          ~cycles_per_item:o.Gem_dse.Outcome.total_cycles
      in
      Table.add_row t
        [
          p.Gem_dse.Point.label;
          Printf.sprintf "%.2f GHz" o.Gem_dse.Outcome.fmax_ghz;
          Printf.sprintf "%.2f GHz" freq;
          Table.fmt_f ~dec:1 fps;
          Table.fmt_f ~dec:2 (o.Gem_dse.Outcome.total_area_um2 /. 1e6);
          Table.fmt_f ~dec:0 o.Gem_dse.Outcome.power_mw;
          Table.fmt_f ~dec:1 (fps /. (o.Gem_dse.Outcome.power_mw /. 1000.));
        ])
    rr.Gem_dse.Exec.results;
  Table.print t;
  print_endline
    "\nNote how the fully-combinational point trades clock rate for area/power,\n\
     and how the two-level template exposes the intermediate factorizations\n\
     (paper Fig. 3)."
