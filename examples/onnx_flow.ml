(* The push-button flow (paper Section III-B): read an ONNX-style graph
   from its textual form, infer shapes, lower it onto the accelerator, and
   run it twice — functionally (bit-exact against the golden model) and in
   timing mode.

     dune exec examples/onnx_flow.exe *)

open Gem_util
module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config
module Runtime = Gem_sw.Runtime
module Onnx = Gem_sw.Onnx

let () =
  (* Serialize the example graph and read it back, as a file-based flow
     would. *)
  let text = Onnx.to_string Onnx.simple_cnn in
  print_endline "--- ONNX-style graph (textual form) ---";
  print_string text;
  let graph =
    match Onnx.parse text with
    | Ok g -> g
    | Error e -> failwith ("parse error: " ^ e)
  in
  print_endline "\n--- inferred shapes ---";
  List.iter
    (fun (name, dims) ->
      Printf.printf "  %-8s -> [%s]\n" name
        (String.concat "; " (Array.to_list (Array.map string_of_int dims))))
    (Onnx.infer_shapes graph);

  let model = Onnx.lower graph in
  print_endline "\n--- lowered layers ---";
  List.iter
    (fun (name, l) -> Printf.printf "  %-8s %s\n" name (Gem_dnn.Layer.describe l))
    model.Gem_dnn.Layer.layers;

  (* Functional run vs golden model. *)
  let soc = Soc.create (Soc_config.with_functional true Soc_config.default) in
  let rng = Rng.create ~seed:7 in
  let input = Tensor.random rng [| 1; 8; 8; 3 |] ~lo:(-32) ~hi:32 in
  let seed = 99 in
  let got = Runtime.run_functional soc ~core:0 model ~input ~seed in
  let want = Runtime.reference_inference model ~input ~seed in
  Printf.printf "\nfunctional inference: %s\n"
    (if Tensor.equal got want then "bit-exact vs golden model"
     else "MISMATCH vs golden model");

  (* Timing run. *)
  let soc = Soc.create Soc_config.default in
  let r = Runtime.run soc ~core:0 model ~mode:(Runtime.Accel { im2col_on_accel = true }) in
  Printf.printf "timing: %s cycles for one inference\n"
    (Table.fmt_int r.Runtime.r_total_cycles)
