(* Quickstart: generate an accelerator, look at its ASIC estimate and C
   header, run a real int8 matmul through the functional datapath, then
   time a full ResNet50 inference on the simulated SoC.

     dune exec examples/quickstart.exe *)

open Gem_util
module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config

let section title = Printf.printf "\n--- %s ---\n" title

let () =
  (* 1. Elaborate an accelerator instance from generator parameters. *)
  let params = Gemmini.Params.default in
  section "Generator parameters";
  print_endline (Gemmini.Params.describe params);

  (* 2. ASIC synthesis estimate (area / fmax / power) and the generated
     C header, like the real generator's outputs. *)
  section "Synthesis estimate";
  let report = Gemmini.Synthesis.estimate params in
  Printf.printf "total area %.2f mm^2, fmax %.2f GHz, power %.0f mW\n"
    (report.Gemmini.Synthesis.total_area_um2 /. 1e6)
    report.Gemmini.Synthesis.fmax_ghz report.Gemmini.Synthesis.power_mw;
  section "Generated header (first lines)";
  String.split_on_char '\n' (Gemmini.Header_gen.generate params)
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter print_endline;

  (* 3. Functional mode: run C = A.B + bias through the real datapath
     (DMA -> scratchpad -> cycle-accurate systolic array -> accumulator). *)
  section "Functional matmul on the simulated SoC";
  let soc = Soc.create (Soc_config.with_functional true Soc_config.default) in
  let core = Soc.core soc 0 in
  let m, k, n = (32, 48, 24) in
  let rng = Rng.create ~seed:42 in
  let a = Matrix.random rng ~rows:m ~cols:k ~lo:(-16) ~hi:16 in
  let b = Matrix.random rng ~rows:k ~cols:n ~lo:(-8) ~hi:8 in
  let a_va = Soc.alloc soc core ~bytes:(m * k) in
  let b_va = Soc.alloc soc core ~bytes:(k * n) in
  let c_va = Soc.alloc soc core ~bytes:(m * n) in
  Soc.host_write_i8 soc core ~vaddr:a_va (Array.concat (Array.to_list a));
  Soc.host_write_i8 soc core ~vaddr:b_va (Array.concat (Array.to_list b));
  let ops =
    Gem_sw.Kernels.matmul_ops params ~scale:1.0 ~a:a_va ~b:b_va ~out:c_va ~m ~k
      ~n ()
    @ [ Gem_sw.Kernels.fence ]
  in
  let cycles = Soc.run_program soc core (List.to_seq ops) in
  let got = Soc.host_read_i8 soc core ~vaddr:c_va ~n:(m * n) in
  let expect = Matrix.mul_sat32 a b in
  let ok = ref true in
  Array.iteri
    (fun i v ->
      let want = Fixed.sat8 (Matrix.get expect (i / n) (i mod n)) in
      if v <> want then ok := false)
    got;
  Printf.printf "%dx%dx%d matmul: %s in %s cycles (%.1f%% PE utilization)\n" m k
    n
    (if !ok then "bit-exact vs reference" else "MISMATCH")
    (Table.fmt_int cycles)
    (100.
    *. Gemmini.Controller.utilization (Soc.controller core));

  (* 4. Timing mode: a full ResNet50 inference with per-class breakdown. *)
  section "ResNet50 inference (timing mode)";
  let soc = Soc.create Soc_config.default in
  let r =
    Gem_sw.Runtime.run soc ~core:0 Gem_dnn.Model_zoo.resnet50
      ~mode:(Gem_sw.Runtime.Accel { im2col_on_accel = true })
  in
  Printf.printf "total: %s cycles = %.1f FPS at 1 GHz\n"
    (Table.fmt_int r.Gem_sw.Runtime.r_total_cycles)
    (Gem_sim.Time.fps ~freq_ghz:1.0 ~cycles_per_item:r.Gem_sw.Runtime.r_total_cycles);
  List.iter
    (fun (k, c) ->
      Printf.printf "  %-12s %s cycles\n" (Gem_dnn.Layer.class_name k) (Table.fmt_int c))
    (Gem_sw.Runtime.cycles_by_class r)
