(* System-level resource partitioning (paper Section V-B, Fig. 5/9):
   a dual-core SoC where each core runs its own DNN — including a mixed
   workload (ResNet50 beside MobileNetV2), which the paper's
   one-network-per-SoC study doesn't show.

     dune exec examples/dual_core_partition.exe *)

open Gem_util
module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config
module Runtime = Gem_sw.Runtime

let scale =
  match
    Option.bind (Sys.getenv_opt "GEMMINI_EXAMPLE_SCALE") int_of_string_opt
  with
  | Some n when n >= 1 -> n
  | _ -> 2

let resnet = Gem_dnn.Model_zoo.(scale_model ~factor:scale resnet50)
let mobilenet = Gem_dnn.Model_zoo.(scale_model ~factor:scale mobilenetv2)

let soc_config ~sp_kb ~l2_kb =
  let accel =
    {
      Gemmini.Params.default with
      sp_capacity_bytes = sp_kb * 1024;
      acc_capacity_bytes = sp_kb * 1024;
    }
  in
  {
    Soc_config.default with
    cores = [ { Soc_config.default_core with accel }; { Soc_config.default_core with accel } ];
    l2_size_bytes = l2_kb * 1024;
  }

let mode = Runtime.Accel { im2col_on_accel = true }

let run_pair name cfg jobs =
  let soc = Soc.create cfg in
  let rs = Runtime.run_parallel soc jobs in
  let l2 = Soc.l2 soc in
  Printf.printf "%-26s" name;
  Array.iter
    (fun r ->
      Printf.printf "  core%d(%s): %s cyc" r.Runtime.r_core r.Runtime.r_model
        (Table.fmt_int r.Runtime.r_total_cycles))
    rs;
  Printf.printf "  | L2 miss %.1f%%\n%!" (100. *. Gem_mem.Cache.miss_rate l2)

let () =
  print_endline "Dual-core SoC: same 1 MB of extra SRAM, two placements";
  print_endline "(paper Fig. 9c: for co-running workloads, feed the shared L2)\n";
  let both_resnet = [| (resnet, mode); (resnet, mode) |] in
  run_pair "2x resnet  Base(256K/1M)" (soc_config ~sp_kb:256 ~l2_kb:1024) both_resnet;
  run_pair "2x resnet  BigSP(512K/1M)" (soc_config ~sp_kb:512 ~l2_kb:1024) both_resnet;
  run_pair "2x resnet  BigL2(256K/2M)" (soc_config ~sp_kb:256 ~l2_kb:2048) both_resnet;
  print_newline ();
  let mixed = [| (resnet, mode); (mobilenet, mode) |] in
  run_pair "mixed      Base(256K/1M)" (soc_config ~sp_kb:256 ~l2_kb:1024) mixed;
  run_pair "mixed      BigL2(256K/2M)" (soc_config ~sp_kb:256 ~l2_kb:2048) mixed;
  print_newline ();
  (* How much does co-location cost at all? Compare against a core running
     alone on the Base SoC. *)
  let soc = Soc.create (soc_config ~sp_kb:256 ~l2_kb:1024) in
  let solo = Runtime.run soc ~core:0 resnet ~mode in
  Printf.printf "solo resnet on Base SoC: %s cycles (contention-free reference)\n"
    (Table.fmt_int solo.Runtime.r_total_cycles)
